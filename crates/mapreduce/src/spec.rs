//! Job descriptors and reports.

use cluster::NodeId;
use simkit::trace::Span;

/// Volume descriptor for one map task.
#[derive(Clone, Debug, Default)]
pub struct MapTaskSpec {
    /// Node the task is scheduled on (the caller decides locality; HDFS
    /// replication makes local placement the common case).
    pub node: NodeId,
    /// Bytes read from HDFS (compressed, for RCFile inputs).
    pub read_bytes: u64,
    /// CPU seconds of decode + map work (single core).
    pub cpu_secs: f64,
    /// Map output spilled to local disk.
    pub output_bytes: u64,
}

/// Volume descriptor for one reduce task.
#[derive(Clone, Debug, Default)]
pub struct ReduceTaskSpec {
    pub node: NodeId,
    /// Bytes fetched from map outputs during shuffle.
    pub shuffle_bytes: u64,
    /// CPU seconds of sort/merge + reduce work.
    pub cpu_secs: f64,
    /// Bytes written to HDFS (before replication).
    pub output_bytes: u64,
}

/// A MapReduce job: map tasks in dispatch order, then reduces.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub name: String,
    pub maps: Vec<MapTaskSpec>,
    pub reduces: Vec<ReduceTaskSpec>,
    /// Extra fixed setup time beyond the cluster-wide job overhead (e.g.
    /// distributing a map-join hash table via the distributed cache).
    pub setup_secs: f64,
    /// Fault injection: every `1/f`-th map task fails once mid-flight and
    /// is re-executed (Hadoop's task-level retry — the fault-tolerance
    /// design point §1 credits the MapReduce systems with). 0.0 = off.
    pub map_failure_fraction: f64,
}

impl JobSpec {
    pub fn new(name: impl Into<String>) -> JobSpec {
        JobSpec {
            name: name.into(),
            maps: Vec::new(),
            reduces: Vec::new(),
            setup_secs: 0.0,
            map_failure_fraction: 0.0,
        }
    }

    pub fn total_map_output(&self) -> u64 {
        self.maps.iter().map(|m| m.output_bytes).sum()
    }
}

/// Simulated phase timings for one job, all in seconds from job start.
#[derive(Clone, Debug, Default)]
pub struct JobReport {
    pub name: String,
    /// Executor time at which this job started (0.0 on a fresh executor;
    /// the previous jobs' total when a query's DAG shares one executor).
    /// `start_secs + total` locates the job on the query's time axis.
    pub start_secs: f64,
    /// When the last map task finished.
    pub map_done: f64,
    /// When the shuffle completed (== `map_done` for map-only jobs).
    pub shuffle_done: f64,
    /// Job completion (includes reduce phase and output writes).
    pub total: f64,
    pub n_maps: usize,
    pub n_reduces: usize,
    /// Lower bound on map waves: ceil(maps / total map slots).
    pub min_waves: u32,
    /// Map tasks that failed once and were retried.
    pub map_retries: u32,
    /// Per-phase spans ("map", "shuffle", "reduce") with cluster-wide
    /// disk/CPU/NIC service and queue-wait totals — the same record PDW
    /// steps emit, so one report path covers both engines.
    pub spans: Vec<Span>,
}
