//! The jobtracker: lowers a [`JobSpec`] onto the shared `cluster::exec`
//! substrate — slot-scheduled [`TaskPhase`]s for map and reduce, an
//! ordinary work [`Phase`] for the shuffle — so MapReduce jobs take time,
//! contention, and trace spans from the same code path PDW queries use.
//!
//! This module owns *policy* (which steps make up a task, where faults are
//! injected, where the phase barriers sit); all *mechanism* — slot pools,
//! FIFO resource queues, HDFS ingest links, span accounting — lives in
//! [`cluster::exec`](cluster). No simkit resource is acquired here; the
//! `exec-substrate-only` simlint rule gates that.

use crate::spec::{JobReport, JobSpec};
use cluster::{ClusterExec, Params, Phase, Task, TaskPhase, TaskStep};
use simkit::as_secs;

/// Simulate one job against a fresh cluster substrate; returns phase
/// timings (absolute seconds from job start) and the per-phase spans.
pub fn run_job(spec: &JobSpec, params: &Params) -> JobReport {
    let mut exec = ClusterExec::new(params.clone());
    run_job_on(&mut exec, spec)
}

/// Simulate one job on an existing executor (whose clock need not be at
/// zero): a query's whole job DAG can share one substrate, so spans land
/// on one coherent time axis and resource accounting accumulates across
/// jobs. Phase timing fields stay *job-relative* (identical to a fresh
/// executor — all service times are volume-derived, so offsetting the
/// start shifts every event by exactly `start_secs`); [`JobReport::spans`]
/// carry the executor's absolute time.
pub fn run_job_on(exec: &mut ClusterExec, spec: &JobSpec) -> JobReport {
    let params = exec.params().clone();
    let params = &params;
    let t0 = exec.now();
    let nodes = params.nodes;
    let spans_before = exec.trace().spans.len();
    let mut report = JobReport {
        name: spec.name.clone(),
        start_secs: as_secs(t0),
        n_maps: spec.maps.len(),
        n_reduces: spec.reduces.len(),
        min_waves: (spec.maps.len() as u32).div_ceil(params.total_map_slots().max(1)),
        ..JobReport::default()
    };

    // ---- map phase ------------------------------------------------------
    // A task holds a map slot for its whole life: startup, HDFS read over
    // the node-shared ingest link, decode+map CPU, spill to local disk.
    // Deterministic fault injection marks every `1/f`-th task to die
    // mid-flight having wasted its startup plus half its work (Hadoop's
    // task-level retry then re-enqueues it at the back of the queue).
    let fail_every = if spec.map_failure_fraction > 0.0 {
        (1.0 / spec.map_failure_fraction).round().max(1.0) as usize
    } else {
        usize::MAX
    };
    let mut map_phase = TaskPhase::new("map", params.map_slots_per_node)
        .setup(params.job_overhead + spec.setup_secs);
    for (i, m) in spec.maps.iter().enumerate() {
        let mut task = Task::on(m.node % nodes)
            .step(TaskStep::Delay {
                secs: params.task_startup,
            })
            .step(TaskStep::HdfsRead {
                bytes: m.read_bytes,
                bw: params.hdfs_read_bw_per_node,
            })
            .step(TaskStep::Cpu { secs: m.cpu_secs })
            .step(TaskStep::DiskWrite {
                disk: i % params.disks_per_node as usize,
                bytes: m.output_bytes,
            });
        if fail_every != usize::MAX && i % fail_every == fail_every - 1 {
            task = task.fail_once_wasting(
                params.task_startup
                    + m.cpu_secs / 2.0
                    + m.read_bytes as f64 / params.hdfs_read_bw_per_node / 2.0,
            );
        }
        map_phase.task(task);
    }
    let map = exec.run_tasks(map_phase);
    report.map_done = as_secs(map.end.saturating_sub(t0));
    report.map_retries = map.retries;

    // ---- shuffle phase --------------------------------------------------
    // Every map node pushes its share of the map output; every reducer
    // pulls its input. Both NIC directions are occupied; the phase drains
    // when all transfers complete. Map-only jobs get a zero-length phase
    // so the span sequence is always map/shuffle/reduce.
    let mut shuffle = Phase::new("shuffle");
    if !spec.reduces.is_empty() {
        let send_share = spec.total_map_output() / nodes as u64;
        for n in 0..nodes {
            shuffle.net_send(n, send_share as f64, params.nic_bw);
        }
        for r in &spec.reduces {
            shuffle.net_recv(r.node % nodes, r.shuffle_bytes as f64, params.nic_bw);
        }
    }
    exec.run(shuffle);
    report.shuffle_done = as_secs(exec.now().saturating_sub(t0));

    // ---- reduce phase ---------------------------------------------------
    // Startup, sort/merge + reduce CPU, then the replicated HDFS output
    // write: local disk and replication NIC traffic drain concurrently.
    let repl = params.hdfs_replication as u64;
    let mut reduce_phase = TaskPhase::new("reduce", params.reduce_slots_per_node);
    for (i, r) in spec.reduces.iter().enumerate() {
        reduce_phase.task(
            Task::on(r.node % nodes)
                .step(TaskStep::Delay {
                    secs: params.task_startup,
                })
                .step(TaskStep::Cpu { secs: r.cpu_secs })
                .step(TaskStep::HdfsWrite {
                    disk: i % params.disks_per_node as usize,
                    bytes: r.output_bytes,
                    net_bytes: r.output_bytes.saturating_mul(repl - 1),
                    net_bw: params.nic_bw,
                }),
        );
    }
    let reduce = exec.run_tasks(reduce_phase);
    report.total = as_secs(reduce.end.saturating_sub(t0));
    report.spans = exec.trace().spans[spans_before..].to_vec();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MapTaskSpec, ReduceTaskSpec};
    use cluster::params::MB;

    fn params() -> Params {
        Params::paper_dss()
    }

    fn uniform_maps(n: usize, read_mb: f64, cpu: f64, nodes: usize) -> Vec<MapTaskSpec> {
        (0..n)
            .map(|i| MapTaskSpec {
                node: i % nodes,
                read_bytes: (read_mb * MB as f64) as u64,
                cpu_secs: cpu,
                output_bytes: 0,
            })
            .collect()
    }

    #[test]
    fn empty_file_tasks_cost_startup_only() {
        // 128 empty-file tasks = exactly one wave of pure startup.
        let p = params();
        let mut spec = JobSpec::new("empties");
        spec.maps = uniform_maps(128, 0.0, 0.0, p.nodes);
        let r = run_job(&spec, &p);
        let expect = p.job_overhead + p.task_startup;
        assert!(
            (r.map_done - expect).abs() < 0.5,
            "one wave of startups: want ~{expect}, got {}",
            r.map_done
        );
    }

    #[test]
    fn waves_scale_with_task_count() {
        let p = params();
        let mut one = JobSpec::new("one-wave");
        one.maps = uniform_maps(128, 0.0, 10.0, p.nodes);
        let mut four = JobSpec::new("four-waves");
        four.maps = uniform_maps(512, 0.0, 10.0, p.nodes);
        let r1 = run_job(&one, &p);
        let r4 = run_job(&four, &p);
        assert_eq!(r1.min_waves, 1);
        assert_eq!(r4.min_waves, 4);
        let work1 = r1.map_done - p.job_overhead;
        let work4 = r4.map_done - p.job_overhead;
        assert!(
            (work4 / work1 - 4.0).abs() < 0.3,
            "4 waves should take ~4x one wave: {work1} vs {work4}"
        );
    }

    #[test]
    fn q1_style_mixed_empty_and_full_files() {
        // The paper's Q1 analysis: 512 bucket files, only 128 non-empty.
        // Ideal would be 75s (full) + 3 waves of empties ≈ 93s, but FIFO
        // dispatch mixes them so some slot runs two full tasks → ~150s.
        let p = params();
        let mut spec = JobSpec::new("q1-mix");
        // Interleave: bucket b non-empty iff b % 4 == 0 (128 of 512).
        // Node placement follows HDFS replica placement, which is
        // decorrelated from the empty/full pattern (use a coprime stride).
        spec.maps = (0..512usize)
            .map(|b| MapTaskSpec {
                node: (b + b / 4) % p.nodes,
                read_bytes: 0,
                cpu_secs: if b % 4 == 0 { 69.0 } else { 0.0 }, // +6s startup = 75s/6s
                output_bytes: 0,
            })
            .collect();
        let r = run_job(&spec, &p);
        let t = r.map_done - p.job_overhead;
        assert!(
            t > 100.0 && t < 170.0,
            "mixed dispatch should land between ideal 93s and 2x75s: got {t}"
        );
    }

    #[test]
    fn reduce_and_shuffle_phases_accounted() {
        let p = params();
        let mut spec = JobSpec::new("with-reduce");
        spec.maps = (0..128)
            .map(|i| MapTaskSpec {
                node: i % p.nodes,
                read_bytes: 64 * MB,
                cpu_secs: 1.0,
                output_bytes: 64 * MB,
            })
            .collect();
        spec.reduces = (0..128)
            .map(|i| ReduceTaskSpec {
                node: i % p.nodes,
                shuffle_bytes: 64 * MB,
                cpu_secs: 2.0,
                output_bytes: 8 * MB,
            })
            .collect();
        let r = run_job(&spec, &p);
        assert!(r.map_done > 0.0);
        assert!(r.shuffle_done > r.map_done, "shuffle after maps");
        assert!(r.total > r.shuffle_done, "reduce after shuffle");
        // Shuffle: each node receives 8 reducers x 64MB = 512MB at 110MB/s
        // ≈ 4.7s (plus send side overlap).
        let shuffle_t = r.shuffle_done - r.map_done;
        assert!(
            shuffle_t > 3.0 && shuffle_t < 12.0,
            "shuffle ≈ 5s, got {shuffle_t}"
        );
    }

    #[test]
    fn map_only_job_completes_at_map_done() {
        let p = params();
        let mut spec = JobSpec::new("map-only");
        spec.maps = uniform_maps(10, 1.0, 0.5, p.nodes);
        let r = run_job(&spec, &p);
        assert_eq!(r.map_done, r.shuffle_done);
        assert_eq!(r.total, r.map_done);
    }

    #[test]
    fn hdfs_bandwidth_limits_read_heavy_maps() {
        let p = params();
        // One wave, each task reads 400MB: per node 8 tasks x 400MB =
        // 3.2GB over 400MB/s ≈ 8s of read serialized per node.
        let mut spec = JobSpec::new("read-heavy");
        spec.maps = uniform_maps(128, 400.0, 0.0, p.nodes);
        let r = run_job(&spec, &p);
        let t = r.map_done - p.job_overhead - p.task_startup;
        assert!(t > 7.0 && t < 11.0, "read-bound wave ≈ 8s, got {t}");
    }

    #[test]
    fn failed_tasks_retry_and_extend_the_map_phase() {
        let p = params();
        let mk = |fail: f64| {
            let mut spec = JobSpec::new("faults");
            spec.maps = uniform_maps(128, 0.0, 10.0, p.nodes);
            spec.map_failure_fraction = fail;
            spec
        };
        let healthy = run_job(&mk(0.0), &p);
        let faulty = run_job(&mk(0.25), &p);
        assert_eq!(healthy.map_retries, 0);
        assert_eq!(faulty.map_retries, 32, "every 4th of 128 tasks retries");
        assert!(
            faulty.map_done > healthy.map_done,
            "retries cost time: {} vs {}",
            faulty.map_done,
            healthy.map_done
        );
        // Retrying 25% of one wave costs roughly one extra partial wave,
        // not a restart of everything.
        assert!(faulty.map_done < healthy.map_done * 2.5);
    }

    #[test]
    fn job_report_carries_phase_spans() {
        let p = params();
        let mut spec = JobSpec::new("spanned");
        spec.maps = (0..128)
            .map(|i| MapTaskSpec {
                node: i % p.nodes,
                read_bytes: 64 * MB,
                cpu_secs: 1.0,
                output_bytes: 64 * MB,
            })
            .collect();
        spec.reduces = (0..128)
            .map(|i| ReduceTaskSpec {
                node: i % p.nodes,
                shuffle_bytes: 64 * MB,
                cpu_secs: 2.0,
                output_bytes: 8 * MB,
            })
            .collect();
        let r = run_job(&spec, &p);
        let names: Vec<_> = r.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["map", "shuffle", "reduce"]);
        assert!(
            (simkit::as_secs(r.spans[0].end) - r.map_done).abs() < 1e-9,
            "map span ends at map_done"
        );
        assert!(
            (simkit::as_secs(r.spans[2].end) - r.total).abs() < 1e-9,
            "reduce span ends at job completion"
        );
        // Phase character: maps read + compute, shuffle moves bytes,
        // reduces compute + write.
        assert!(r.spans[0].util().disk_busy > 0.0, "maps read from HDFS");
        assert!(r.spans[0].util().cpu_busy > 0.0);
        assert!(r.spans[1].util().net_busy > 0.0, "shuffle is network");
        assert!(r.spans[2].util().cpu_busy > 0.0, "reduces burn CPU");
    }

    #[test]
    fn setup_secs_adds_fixed_cost() {
        let p = params();
        let mut spec = JobSpec::new("distcache");
        spec.maps = uniform_maps(1, 0.0, 0.0, p.nodes);
        spec.setup_secs = 25.0;
        let r = run_job(&spec, &p);
        assert!(r.total >= 25.0 + p.job_overhead + p.task_startup - 0.1);
    }
}
