//! The jobtracker: slot scheduling + phase simulation.

use crate::spec::{JobReport, JobSpec};
use cluster::{Cluster, Params};
use simkit::trace::{Contrib, ResKind, Span};
use simkit::{secs, Latch, ResourceId, Sim, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

type S = Sim<()>;
type Thunk = Box<dyn FnOnce(&mut S)>;

/// Snapshots cluster-wide resource counters at phase boundaries and turns
/// the deltas into [`Span`]s (one `Contrib` per resource kind).
struct PhaseTracker {
    disk: Vec<ResourceId>,
    cpu: Vec<ResourceId>,
    net: Vec<ResourceId>,
    last_t: SimTime,
    last: [f64; 6],
}

impl PhaseTracker {
    fn new(cluster: &Cluster, hdfs_read: &[ResourceId]) -> Rc<RefCell<PhaseTracker>> {
        let mut disk: Vec<ResourceId> = hdfs_read.to_vec();
        let mut cpu = Vec::new();
        let mut net = Vec::new();
        for n in &cluster.nodes {
            disk.extend(&n.disks);
            cpu.push(n.cpu);
            net.push(n.nic_send);
            net.push(n.nic_recv);
        }
        Rc::new(RefCell::new(PhaseTracker {
            disk,
            cpu,
            net,
            last_t: 0,
            last: [0.0; 6],
        }))
    }

    /// Cumulative [disk, cpu, net] busy then wait seconds at `sim.now()`.
    fn totals(&self, sim: &S) -> [f64; 6] {
        let sum = |ids: &[ResourceId], f: &dyn Fn(ResourceId) -> SimTime| -> f64 {
            ids.iter().map(|&id| simkit::as_secs(f(id))).sum()
        };
        [
            sum(&self.disk, &|id| sim.resource_busy_time(id)),
            sum(&self.cpu, &|id| sim.resource_busy_time(id)),
            sum(&self.net, &|id| sim.resource_busy_time(id)),
            sum(&self.disk, &|id| sim.resource_queue_wait(id)),
            sum(&self.cpu, &|id| sim.resource_queue_wait(id)),
            sum(&self.net, &|id| sim.resource_queue_wait(id)),
        ]
    }

    /// Close the phase that ran since the previous boundary.
    fn mark(&mut self, sim: &S, name: &str) -> Span {
        let cur = self.totals(sim);
        let mut contribs = Vec::new();
        for (i, kind) in ResKind::ALL.iter().enumerate() {
            let service = cur[i] - self.last[i];
            let queue_wait = cur[i + 3] - self.last[i + 3];
            if service > 0.0 || queue_wait > 0.0 {
                contribs.push(Contrib {
                    kind: *kind,
                    node: None,
                    service,
                    queue_wait,
                });
            }
        }
        let span = Span {
            name: name.to_string(),
            node: None,
            start: self.last_t,
            end: sim.now(),
            contribs,
        };
        self.last_t = sim.now();
        self.last = cur;
        span
    }
}

/// A per-node pool of task slots. A slot is held for a task's whole life
/// (startup + read + cpu + spill), which is what produces map *waves*.
struct SlotPool {
    free: u32,
    queue: VecDeque<Thunk>,
}

impl SlotPool {
    fn new(slots: u32) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(SlotPool {
            free: slots,
            queue: VecDeque::new(),
        }))
    }

    fn acquire(pool: &Rc<RefCell<Self>>, sim: &mut S, run: Thunk) {
        let to_run = {
            let mut p = pool.borrow_mut();
            if p.free > 0 {
                p.free -= 1;
                Some(run)
            } else {
                p.queue.push_back(run);
                None
            }
        };
        if let Some(t) = to_run {
            run_now(sim, t);
        }
    }

    fn release(pool: &Rc<RefCell<Self>>, sim: &mut S) {
        let next = {
            let mut p = pool.borrow_mut();
            match p.queue.pop_front() {
                Some(t) => Some(t),
                None => {
                    p.free += 1;
                    None
                }
            }
        };
        if let Some(t) = next {
            run_now(sim, t);
        }
    }
}

fn run_now(sim: &mut S, t: Thunk) {
    // Schedule at now to keep the event-loop borrow discipline simple.
    sim.schedule_in(0, Box::new(move |sim, _| t(sim)));
}

/// Build one map task's execution chain. On injected failure the task
/// burns its startup plus half its work, releases the slot, and re-enqueues
/// a fresh (non-failing) attempt — Hadoop's retry path.
#[allow(clippy::too_many_arguments)]
fn map_task_body(
    node: usize,
    disk: usize,
    read_bytes: u64,
    cpu_secs: f64,
    out_bytes: u64,
    task_startup: f64,
    hdfs_bw: f64,
    cl: Rc<Cluster>,
    hdfs: Rc<Vec<simkit::ResourceId>>,
    pool: Rc<RefCell<SlotPool>>,
    will_fail: bool,
    report: Rc<RefCell<JobReport>>,
    latch: Latch<()>,
) -> Thunk {
    Box::new(move |sim: &mut S| {
        if will_fail {
            // Half the read+cpu happens, then the JVM dies.
            let wasted = secs(task_startup + cpu_secs / 2.0 + read_bytes as f64 / hdfs_bw / 2.0);
            let retry_pool = pool.clone();
            sim.after(wasted, move |sim, _| {
                report.borrow_mut().map_retries += 1;
                let retry = map_task_body(
                    node,
                    disk,
                    read_bytes,
                    cpu_secs,
                    out_bytes,
                    task_startup,
                    hdfs_bw,
                    cl.clone(),
                    hdfs.clone(),
                    retry_pool.clone(),
                    false,
                    report.clone(),
                    latch.clone(),
                );
                SlotPool::release(&retry_pool, sim);
                SlotPool::acquire(&retry_pool, sim, retry);
            });
            return;
        }
        sim.after(secs(task_startup), move |sim, _| {
            let read_t = secs(read_bytes as f64 / hdfs_bw);
            let cl2 = cl.clone();
            let pool_rel = pool.clone();
            sim.request(
                hdfs[node],
                read_t,
                Box::new(move |sim, _| {
                    let cl3 = cl2.clone();
                    cl2.cpu(
                        sim,
                        node,
                        cpu_secs,
                        Box::new(move |sim, _| {
                            cl3.disk_write_seq(
                                sim,
                                node,
                                disk,
                                out_bytes,
                                Box::new(move |sim, _| {
                                    SlotPool::release(&pool_rel, sim);
                                    latch.count_down(sim);
                                }),
                            );
                        }),
                    );
                }),
            );
        });
    })
}

/// Simulate one job against fresh cluster resources; returns phase timings.
pub fn run_job(spec: &JobSpec, params: &Params) -> JobReport {
    let mut sim: S = Sim::new();
    let cluster = Rc::new(Cluster::build(&mut sim, params.clone()));
    // HDFS read bandwidth is a per-node shared pipe distinct from raw disks
    // (the paper: testdfsio saw ~400 MB/s/node vs ~800 MB/s raw).
    let hdfs_read: Vec<_> = (0..params.nodes)
        .map(|n| sim.add_resource(format!("node{n}.hdfs_read"), 1))
        .collect();
    let hdfs_read = Rc::new(hdfs_read);
    let tracker = PhaseTracker::new(&cluster, &hdfs_read);

    let report = Rc::new(RefCell::new(JobReport {
        name: spec.name.clone(),
        n_maps: spec.maps.len(),
        n_reduces: spec.reduces.len(),
        min_waves: (spec.maps.len() as u32).div_ceil(params.total_map_slots().max(1)),
        ..JobReport::default()
    }));

    let map_pools: Vec<_> = (0..params.nodes)
        .map(|_| SlotPool::new(params.map_slots_per_node))
        .collect();
    let reduce_pools: Vec<_> = (0..params.nodes)
        .map(|_| SlotPool::new(params.reduce_slots_per_node))
        .collect();

    let setup = params.job_overhead + spec.setup_secs;
    let task_startup = params.task_startup;
    let hdfs_bw = params.hdfs_read_bw_per_node;
    let nic_bw = params.nic_bw;
    let repl = params.hdfs_replication as u64;
    let nodes = params.nodes;

    // ---- reduce phase (constructed first so the map latch can launch it) --
    let reduces = spec.reduces.clone();
    let report_r = report.clone();
    let cluster_r = cluster.clone();
    let tracker_r = tracker.clone();
    let reduce_pools_r: Vec<_> = reduce_pools.to_vec();
    let launch_reduce: Thunk = Box::new(move |sim: &mut S| {
        {
            let mut rep = report_r.borrow_mut();
            rep.shuffle_done = simkit::as_secs(sim.now());
            let span = tracker_r.borrow_mut().mark(sim, "shuffle");
            rep.spans.push(span);
        }
        let n_red = reduces.len() as u64;
        let report_done = report_r.clone();
        let tracker_done = tracker_r.clone();
        let done = Latch::with(n_red, move |sim: &mut S, _| {
            let mut rep = report_done.borrow_mut();
            rep.total = simkit::as_secs(sim.now());
            let span = tracker_done.borrow_mut().mark(sim, "reduce");
            rep.spans.push(span);
        });
        if n_red == 0 {
            let mut rep = report_r.borrow_mut();
            rep.total = simkit::as_secs(sim.now());
            let span = tracker_r.borrow_mut().mark(sim, "reduce");
            rep.spans.push(span);
            return;
        }
        for (i, r) in reduces.iter().enumerate() {
            let node = r.node % nodes;
            let pool = reduce_pools_r[node].clone();
            let pool_rel = pool.clone();
            let cl = cluster_r.clone();
            let done = done.clone();
            let (cpu_secs, out_bytes) = (r.cpu_secs, r.output_bytes);
            let disk = i % cl.params.disks_per_node as usize;
            let body: Thunk = Box::new(move |sim: &mut S| {
                sim.after(secs(task_startup), move |sim, _| {
                    let cl2 = cl.clone();
                    cl.cpu(
                        sim,
                        node,
                        cpu_secs,
                        Box::new(move |sim, _| {
                            // HDFS output write: local disk + replication
                            // traffic on the send NIC.
                            let net_bytes = out_bytes.saturating_mul(repl - 1);
                            let fin = Latch::with(2, move |sim: &mut S, _| {
                                SlotPool::release(&pool_rel, sim);
                                done.count_down(sim);
                            });
                            let f1 = fin.clone();
                            cl2.disk_write_seq(
                                sim,
                                node,
                                disk,
                                out_bytes,
                                Box::new(move |sim, _| f1.count_down(sim)),
                            );
                            let t = secs(net_bytes as f64 / nic_bw);
                            let f2 = fin;
                            sim.request(
                                cl2.nodes[node].nic_send,
                                t,
                                Box::new(move |sim, _| f2.count_down(sim)),
                            );
                        }),
                    );
                });
            });
            SlotPool::acquire(&pool, sim, body);
        }
    });

    // ---- shuffle phase --------------------------------------------------
    let reduces_s = spec.reduces.clone();
    let total_map_out = spec.total_map_output();
    let cluster_s = cluster.clone();
    let launch_shuffle: Thunk = Box::new(move |sim: &mut S| {
        if reduces_s.is_empty() {
            run_now(sim, launch_reduce);
            return;
        }
        // Every map node pushes its share; every reducer node pulls its
        // input. Both NIC directions are occupied; completion when all
        // transfers drain.
        let n_events = nodes as u64 + reduces_s.len() as u64;
        let next = Rc::new(RefCell::new(Some(launch_reduce)));
        let latch = Latch::with(n_events, move |sim: &mut S, _| {
            let t = next
                .borrow_mut()
                .take()
                .expect("shuffle completion fired once");
            run_now(sim, t);
        });
        let send_share = total_map_out / nodes as u64;
        for n in 0..nodes {
            let l = latch.clone();
            let t = secs(send_share as f64 / nic_bw);
            sim.request(
                cluster_s.nodes[n].nic_send,
                t,
                Box::new(move |sim, _| l.count_down(sim)),
            );
        }
        for r in &reduces_s {
            let node = r.node % nodes;
            let l = latch.clone();
            let t = secs(r.shuffle_bytes as f64 / nic_bw);
            sim.request(
                cluster_s.nodes[node].nic_recv,
                t,
                Box::new(move |sim, _| l.count_down(sim)),
            );
        }
    });

    // ---- map phase ------------------------------------------------------
    let report_m = report.clone();
    let tracker_m = tracker.clone();
    let next_phase = Rc::new(RefCell::new(Some(launch_shuffle)));
    let map_latch = Latch::with(spec.maps.len() as u64, move |sim: &mut S, _| {
        {
            let mut rep = report_m.borrow_mut();
            rep.map_done = simkit::as_secs(sim.now());
            let span = tracker_m.borrow_mut().mark(sim, "map");
            rep.spans.push(span);
        }
        let t = next_phase
            .borrow_mut()
            .take()
            .expect("map completion fired once");
        run_now(sim, t);
    });

    let maps = spec.maps.clone();
    let fail_every = if spec.map_failure_fraction > 0.0 {
        (1.0 / spec.map_failure_fraction).round().max(1.0) as usize
    } else {
        usize::MAX
    };
    let report_retries = report.clone();
    sim.after(secs(setup), move |sim, _| {
        if maps.is_empty() {
            map_latch.arm(sim);
            return;
        }
        for (i, m) in maps.iter().enumerate() {
            let node = m.node % nodes;
            let pool = map_pools[node].clone();
            let cl = cluster.clone();
            let hdfs = hdfs_read.clone();
            let latch = map_latch.clone();
            let (read_bytes, cpu_secs, out_bytes) = (m.read_bytes, m.cpu_secs, m.output_bytes);
            let disk = i % cl.params.disks_per_node as usize;
            // Deterministic fault injection: the i-th task fails once
            // mid-execution, releases its slot, and re-enqueues.
            let will_fail = fail_every != usize::MAX && i % fail_every == fail_every - 1;
            let report_retries = report_retries.clone();
            let body = map_task_body(
                node,
                disk,
                read_bytes,
                cpu_secs,
                out_bytes,
                task_startup,
                hdfs_bw,
                cl,
                hdfs,
                pool.clone(),
                will_fail,
                report_retries,
                latch,
            );
            SlotPool::acquire(&pool, sim, body);
        }
    });

    let mut world = ();
    sim.run(&mut world);
    Rc::try_unwrap(report)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| rc.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MapTaskSpec, ReduceTaskSpec};
    use cluster::params::MB;

    fn params() -> Params {
        Params::paper_dss()
    }

    fn uniform_maps(n: usize, read_mb: f64, cpu: f64, nodes: usize) -> Vec<MapTaskSpec> {
        (0..n)
            .map(|i| MapTaskSpec {
                node: i % nodes,
                read_bytes: (read_mb * MB as f64) as u64,
                cpu_secs: cpu,
                output_bytes: 0,
            })
            .collect()
    }

    #[test]
    fn empty_file_tasks_cost_startup_only() {
        // 128 empty-file tasks = exactly one wave of pure startup.
        let p = params();
        let mut spec = JobSpec::new("empties");
        spec.maps = uniform_maps(128, 0.0, 0.0, p.nodes);
        let r = run_job(&spec, &p);
        let expect = p.job_overhead + p.task_startup;
        assert!(
            (r.map_done - expect).abs() < 0.5,
            "one wave of startups: want ~{expect}, got {}",
            r.map_done
        );
    }

    #[test]
    fn waves_scale_with_task_count() {
        let p = params();
        let mut one = JobSpec::new("one-wave");
        one.maps = uniform_maps(128, 0.0, 10.0, p.nodes);
        let mut four = JobSpec::new("four-waves");
        four.maps = uniform_maps(512, 0.0, 10.0, p.nodes);
        let r1 = run_job(&one, &p);
        let r4 = run_job(&four, &p);
        assert_eq!(r1.min_waves, 1);
        assert_eq!(r4.min_waves, 4);
        let work1 = r1.map_done - p.job_overhead;
        let work4 = r4.map_done - p.job_overhead;
        assert!(
            (work4 / work1 - 4.0).abs() < 0.3,
            "4 waves should take ~4x one wave: {work1} vs {work4}"
        );
    }

    #[test]
    fn q1_style_mixed_empty_and_full_files() {
        // The paper's Q1 analysis: 512 bucket files, only 128 non-empty.
        // Ideal would be 75s (full) + 3 waves of empties ≈ 93s, but FIFO
        // dispatch mixes them so some slot runs two full tasks → ~150s.
        let p = params();
        let mut spec = JobSpec::new("q1-mix");
        // Interleave: bucket b non-empty iff b % 4 == 0 (128 of 512).
        // Node placement follows HDFS replica placement, which is
        // decorrelated from the empty/full pattern (use a coprime stride).
        spec.maps = (0..512usize)
            .map(|b| MapTaskSpec {
                node: (b + b / 4) % p.nodes,
                read_bytes: 0,
                cpu_secs: if b % 4 == 0 { 69.0 } else { 0.0 }, // +6s startup = 75s/6s
                output_bytes: 0,
            })
            .collect();
        let r = run_job(&spec, &p);
        let t = r.map_done - p.job_overhead;
        assert!(
            t > 100.0 && t < 170.0,
            "mixed dispatch should land between ideal 93s and 2x75s: got {t}"
        );
    }

    #[test]
    fn reduce_and_shuffle_phases_accounted() {
        let p = params();
        let mut spec = JobSpec::new("with-reduce");
        spec.maps = (0..128)
            .map(|i| MapTaskSpec {
                node: i % p.nodes,
                read_bytes: 64 * MB,
                cpu_secs: 1.0,
                output_bytes: 64 * MB,
            })
            .collect();
        spec.reduces = (0..128)
            .map(|i| ReduceTaskSpec {
                node: i % p.nodes,
                shuffle_bytes: 64 * MB,
                cpu_secs: 2.0,
                output_bytes: 8 * MB,
            })
            .collect();
        let r = run_job(&spec, &p);
        assert!(r.map_done > 0.0);
        assert!(r.shuffle_done > r.map_done, "shuffle after maps");
        assert!(r.total > r.shuffle_done, "reduce after shuffle");
        // Shuffle: each node receives 8 reducers x 64MB = 512MB at 110MB/s
        // ≈ 4.7s (plus send side overlap).
        let shuffle_t = r.shuffle_done - r.map_done;
        assert!(
            shuffle_t > 3.0 && shuffle_t < 12.0,
            "shuffle ≈ 5s, got {shuffle_t}"
        );
    }

    #[test]
    fn map_only_job_completes_at_map_done() {
        let p = params();
        let mut spec = JobSpec::new("map-only");
        spec.maps = uniform_maps(10, 1.0, 0.5, p.nodes);
        let r = run_job(&spec, &p);
        assert_eq!(r.map_done, r.shuffle_done);
        assert_eq!(r.total, r.map_done);
    }

    #[test]
    fn hdfs_bandwidth_limits_read_heavy_maps() {
        let p = params();
        // One wave, each task reads 400MB: per node 8 tasks x 400MB =
        // 3.2GB over 400MB/s ≈ 8s of read serialized per node.
        let mut spec = JobSpec::new("read-heavy");
        spec.maps = uniform_maps(128, 400.0, 0.0, p.nodes);
        let r = run_job(&spec, &p);
        let t = r.map_done - p.job_overhead - p.task_startup;
        assert!(t > 7.0 && t < 11.0, "read-bound wave ≈ 8s, got {t}");
    }

    #[test]
    fn failed_tasks_retry_and_extend_the_map_phase() {
        let p = params();
        let mk = |fail: f64| {
            let mut spec = JobSpec::new("faults");
            spec.maps = uniform_maps(128, 0.0, 10.0, p.nodes);
            spec.map_failure_fraction = fail;
            spec
        };
        let healthy = run_job(&mk(0.0), &p);
        let faulty = run_job(&mk(0.25), &p);
        assert_eq!(healthy.map_retries, 0);
        assert_eq!(faulty.map_retries, 32, "every 4th of 128 tasks retries");
        assert!(
            faulty.map_done > healthy.map_done,
            "retries cost time: {} vs {}",
            faulty.map_done,
            healthy.map_done
        );
        // Retrying 25% of one wave costs roughly one extra partial wave,
        // not a restart of everything.
        assert!(faulty.map_done < healthy.map_done * 2.5);
    }

    #[test]
    fn job_report_carries_phase_spans() {
        let p = params();
        let mut spec = JobSpec::new("spanned");
        spec.maps = (0..128)
            .map(|i| MapTaskSpec {
                node: i % p.nodes,
                read_bytes: 64 * MB,
                cpu_secs: 1.0,
                output_bytes: 64 * MB,
            })
            .collect();
        spec.reduces = (0..128)
            .map(|i| ReduceTaskSpec {
                node: i % p.nodes,
                shuffle_bytes: 64 * MB,
                cpu_secs: 2.0,
                output_bytes: 8 * MB,
            })
            .collect();
        let r = run_job(&spec, &p);
        let names: Vec<_> = r.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["map", "shuffle", "reduce"]);
        assert!(
            (simkit::as_secs(r.spans[0].end) - r.map_done).abs() < 1e-9,
            "map span ends at map_done"
        );
        assert!(
            (simkit::as_secs(r.spans[2].end) - r.total).abs() < 1e-9,
            "reduce span ends at job completion"
        );
        // Phase character: maps read + compute, shuffle moves bytes,
        // reduces compute + write.
        assert!(r.spans[0].util().disk_busy > 0.0, "maps read from HDFS");
        assert!(r.spans[0].util().cpu_busy > 0.0);
        assert!(r.spans[1].util().net_busy > 0.0, "shuffle is network");
        assert!(r.spans[2].util().cpu_busy > 0.0, "reduces burn CPU");
    }

    #[test]
    fn setup_secs_adds_fixed_cost() {
        let p = params();
        let mut spec = JobSpec::new("distcache");
        spec.maps = uniform_maps(1, 0.0, 0.0, p.nodes);
        spec.setup_secs = 25.0;
        let r = run_job(&spec, &p);
        assert!(r.total >= 25.0 + p.job_overhead + p.task_startup - 0.1);
    }
}
