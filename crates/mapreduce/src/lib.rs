//! # mapreduce — a Hadoop 0.20-style MapReduce engine simulation
//!
//! Faithfully models the scheduling behaviour the paper's Hive analysis
//! hinges on:
//!
//! * per-node map/reduce **slots** (8 + 8 per node, 128 + 128 total) — a
//!   slot is held for a task's entire life, so 512 map tasks over 128 slots
//!   run in ~4 waves,
//! * a fixed **task startup cost** (~6 s: JVM spawn + split fetch) that
//!   dominates small tasks — the paper's "map tasks over empty buckets
//!   finish in 6 seconds" and the Q22 sub-linear scaling,
//! * FIFO task dispatch in input-file order, so a wave can mix empty and
//!   non-empty buckets (the Q1 "148 s instead of 93 s" effect),
//! * HDFS read bandwidth shared per node, CPU-bound decode charged to the
//!   node's core pool, map output spilled to local disk,
//! * shuffle modelled as sender/receiver NIC occupancy, reduce output
//!   written back to HDFS with replication traffic.
//!
//! The *data* transformation (what map and reduce functions compute) is done
//! by the caller (the `hive` crate) over real rows; this crate turns
//! per-task **volume descriptors** into a simulated schedule and phase
//! timings.
//!
//! Since the substrate port, this crate holds only *policy*: [`run_job`]
//! decides task counts, split sizes, spill volumes and per-task step
//! chains, then expresses map/reduce as `cluster::exec::TaskPhase`
//! (slot-scheduled task waves) and shuffle as a `cluster::exec::Phase` —
//! the same traced DES layer PDW runs on. All *mechanism* (slots, FIFO
//! queues, resource time, spans) lives in `cluster::exec`; the
//! `exec-substrate-only` simlint rule keeps it that way. Entry points:
//! [`run_job`] over a [`JobSpec`] (fresh substrate), or [`run_job_on`] to
//! run a DAG of jobs on one shared substrate (coherent time axis, whole-
//! query resource accounting); both return a [`JobReport`] whose spans
//! cut the job at the map/shuffle/reduce barriers. Paper anchors: §3.3.2
//! (Hive architecture), Table 4 (map waves), Table 5 (Q22 startup costs).

#![forbid(unsafe_code)]

pub mod engine;
pub mod spec;

pub use engine::{run_job, run_job_on};
pub use spec::{JobReport, JobSpec, MapTaskSpec, ReduceTaskSpec};
