//! Scheduling-behaviour tests for the MapReduce engine beyond the unit
//! suite: reduce waves, slot fairness, and phase ordering invariants.

use cluster::{params::MB, Params};
use mapreduce::{run_job, JobSpec, MapTaskSpec, ReduceTaskSpec};
use proptest::prelude::*;

fn p() -> Params {
    Params::paper_dss()
}

#[test]
fn reduce_tasks_also_run_in_waves() {
    // 256 reducers over 128 reduce slots = 2 waves.
    let params = p();
    let mk = |n_red: usize| {
        let mut spec = JobSpec::new("waves");
        spec.maps = vec![MapTaskSpec {
            node: 0,
            read_bytes: 0,
            cpu_secs: 0.0,
            output_bytes: 0,
        }];
        spec.reduces = (0..n_red)
            .map(|i| ReduceTaskSpec {
                node: i % params.nodes,
                shuffle_bytes: 0,
                cpu_secs: 10.0,
                output_bytes: 0,
            })
            .collect();
        spec
    };
    let one = run_job(&mk(128), &params);
    let two = run_job(&mk(256), &params);
    let reduce_time = |r: &mapreduce::JobReport| r.total - r.shuffle_done;
    let ratio = reduce_time(&two) / reduce_time(&one);
    assert!(
        (1.7..=2.3).contains(&ratio),
        "2x reducers over fixed slots ≈ 2x reduce time, got {ratio}"
    );
}

#[test]
fn phases_are_ordered_for_every_job_shape() {
    for (n_maps, n_reds) in [(1, 0), (1, 1), (200, 128), (600, 128)] {
        let params = p();
        let mut spec = JobSpec::new("order");
        spec.maps = (0..n_maps)
            .map(|i| MapTaskSpec {
                node: i % params.nodes,
                read_bytes: 8 * MB,
                cpu_secs: 0.5,
                output_bytes: MB,
            })
            .collect();
        spec.reduces = (0..n_reds)
            .map(|i| ReduceTaskSpec {
                node: i % params.nodes,
                shuffle_bytes: MB,
                cpu_secs: 0.5,
                output_bytes: MB,
            })
            .collect();
        let r = run_job(&spec, &params);
        assert!(r.map_done > 0.0);
        assert!(r.shuffle_done >= r.map_done);
        assert!(r.total >= r.shuffle_done);
        assert_eq!(r.n_maps, n_maps);
        assert_eq!(r.n_reduces, n_reds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Map-phase makespan is bounded below by per-slot serial work and
    /// above by fully serial execution.
    #[test]
    fn map_makespan_bounds(
        n_tasks in 1usize..300,
        cpu_ds in 1u32..50, // deciseconds
    ) {
        let params = p();
        let cpu = cpu_ds as f64 / 10.0;
        let mut spec = JobSpec::new("bounds");
        spec.maps = (0..n_tasks)
            .map(|i| MapTaskSpec {
                node: i % params.nodes,
                read_bytes: 0,
                cpu_secs: cpu,
                output_bytes: 0,
            })
            .collect();
        let r = run_job(&spec, &params);
        let work = r.map_done - params.job_overhead;
        let per_task = params.task_startup + cpu;
        let slots = params.total_map_slots() as f64;
        let lower = (n_tasks as f64 / slots).ceil() * per_task;
        let upper = n_tasks as f64 * per_task;
        prop_assert!(work >= lower - 0.5, "work {work} < lower bound {lower}");
        prop_assert!(work <= upper + 0.5, "work {work} > serial bound {upper}");
    }

    /// Total simulated time grows monotonically with per-task work.
    #[test]
    fn more_cpu_never_runs_faster(base_ds in 1u32..30, extra_ds in 1u32..30) {
        let params = p();
        let mk = |cpu: f64| {
            let mut spec = JobSpec::new("mono");
            spec.maps = (0..128)
                .map(|i| MapTaskSpec {
                    node: i % params.nodes,
                    read_bytes: 0,
                    cpu_secs: cpu,
                    output_bytes: 0,
                })
                .collect();
            spec
        };
        let a = run_job(&mk(base_ds as f64 / 10.0), &params);
        let b = run_job(&mk((base_ds + extra_ds) as f64 / 10.0), &params);
        prop_assert!(b.total >= a.total);
    }
}
