//! Property-based tests: the storage structures against reference models.

use proptest::prelude::*;
use relational::expr::Bounds;
use relational::{DataType, Row, Schema, Value};
use std::collections::BTreeMap;
use storage::bufpool::{Access, BufferPool};
use storage::rcfile::RcFile;
use storage::{compress, BTree, ColBlockFile};

// ---- compressor ----------------------------------------------------------

proptest! {
    #[test]
    fn compress_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = compress::compress(&data);
        prop_assert_eq!(compress::decompress(&packed), data);
    }

    #[test]
    fn compress_round_trips_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..400,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let packed = compress::compress(&data);
        prop_assert_eq!(compress::decompress(&packed), data);
    }
}

// ---- B-tree vs BTreeMap model --------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Scan(u16, u8),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        any::<u16>().prop_map(TreeOp::Remove),
        any::<u16>().prop_map(TreeOp::Get),
        (any::<u16>(), any::<u8>()).prop_map(|(k, n)| TreeOp::Scan(k, n)),
    ]
}

proptest! {
    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(tree_op(), 1..300)) {
        let mut tree: BTree<u16, u32> = BTree::with_order(4); // tiny order → many splits
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k));
                }
                TreeOp::Scan(k, n) => {
                    let got: Vec<(u16, u32)> =
                        tree.scan_from(&k, n as usize).into_iter().map(|(a, b)| (*a, *b)).collect();
                    let want: Vec<(u16, u32)> =
                        model.range(k..).take(n as usize).map(|(a, b)| (*a, *b)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
    }
}

// ---- buffer pool vs naive LRU model ---------------------------------------

/// O(n) reference LRU.
struct NaiveLru {
    cap: usize,
    /// Most recent at the back; (page, dirty).
    items: Vec<(u64, bool)>,
}

impl NaiveLru {
    fn access(&mut self, page: u64, dirty: bool) -> (bool, Option<u64>) {
        if let Some(i) = self.items.iter().position(|&(p, _)| p == page) {
            let (p, d) = self.items.remove(i);
            self.items.push((p, d || dirty));
            return (true, None);
        }
        let mut evicted = None;
        if self.items.len() >= self.cap {
            let (p, d) = self.items.remove(0);
            if d {
                evicted = Some(p);
            }
        }
        self.items.push((page, dirty));
        (false, evicted)
    }
}

proptest! {
    #[test]
    fn bufpool_matches_naive_lru(
        cap in 1usize..20,
        accesses in proptest::collection::vec((0u64..40, any::<bool>()), 1..400),
    ) {
        let mut pool = BufferPool::new(cap);
        let mut model = NaiveLru { cap, items: Vec::new() };
        for (page, dirty) in accesses {
            let got = pool.access(page, dirty);
            let (hit, evicted) = model.access(page, dirty);
            match got {
                Access::Hit => prop_assert!(hit),
                Access::Miss { evicted_dirty } => {
                    prop_assert!(!hit);
                    prop_assert_eq!(evicted_dirty, evicted);
                }
            }
            prop_assert_eq!(pool.len(), model.items.len());
        }
    }
}

// ---- RCFile round trip -----------------------------------------------------

fn arb_value(ty: DataType) -> BoxedStrategy<Value> {
    match ty {
        DataType::I64 => prop_oneof![any::<i64>().prop_map(Value::I64), Just(Value::Null)].boxed(),
        DataType::Decimal => (-1_000_000i64..1_000_000).prop_map(Value::Decimal).boxed(),
        DataType::Date => (-100_000i32..100_000).prop_map(Value::Date).boxed(),
        DataType::F64 => any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::F64)
            .boxed(),
        DataType::Str => "[a-zA-Z0-9 ]{0,40}".prop_map(Value::str).boxed(),
        DataType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn rcfile_round_trips(
        rows_data in proptest::collection::vec(
            (arb_value(DataType::I64), arb_value(DataType::Str),
             arb_value(DataType::Decimal), arb_value(DataType::Date)),
            0..200,
        ),
        group in 1usize..64,
    ) {
        let schema = Schema::of(&[
            ("a", DataType::I64),
            ("b", DataType::Str),
            ("c", DataType::Decimal),
            ("d", DataType::Date),
        ]);
        let rows: Vec<Row> = rows_data
            .into_iter()
            .map(|(a, b, c, d)| vec![a, b, c, d])
            .collect();
        let f = RcFile::write(&rows, &schema, group);
        prop_assert_eq!(f.read_all(), rows.clone());
        // Projections agree with manual extraction.
        let proj = f.read_columns(&[2, 0]);
        for (got, want) in proj.iter().zip(&rows) {
            prop_assert_eq!(&got[0], &want[2]);
            prop_assert_eq!(&got[1], &want[0]);
        }
    }
}

// ---- colblock round trip + pruning soundness ------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn colblock_round_trips(
        rows_data in proptest::collection::vec(
            (arb_value(DataType::I64), arb_value(DataType::Str),
             arb_value(DataType::Decimal), arb_value(DataType::Date)),
            0..200,
        ),
        block in 1usize..64,
    ) {
        let schema = Schema::of(&[
            ("a", DataType::I64),
            ("b", DataType::Str),
            ("c", DataType::Decimal),
            ("d", DataType::Date),
        ]);
        let rows: Vec<Row> = rows_data
            .into_iter()
            .map(|(a, b, c, d)| vec![a, b, c, d])
            .collect();
        let f = ColBlockFile::write(&rows, &schema, block);
        prop_assert_eq!(f.read_all(), rows.clone());
        // Projections agree with manual extraction.
        let proj = f.read_columns(&[2, 0]);
        for (got, want) in proj.iter().zip(&rows) {
            prop_assert_eq!(&got[0], &want[2]);
            prop_assert_eq!(&got[1], &want[0]);
        }
    }

    /// Soundness of min/max pruning: restricting the scan to blocks whose
    /// statistics admit the interval must lose no matching row. Because
    /// pruning only drops whole blocks (order is preserved), the pruned
    /// output filtered by the predicate must equal the full table filtered
    /// by the predicate — i.e. every skipped block contained no match.
    #[test]
    fn colblock_pruning_is_sound(
        rows_data in proptest::collection::vec(
            (arb_value(DataType::I64), arb_value(DataType::Date)),
            0..200,
        ),
        block in 1usize..16,
        lo in prop_oneof![Just(None), (-50i64..50).prop_map(Some)],
        hi in prop_oneof![Just(None), (-50i64..50).prop_map(Some)],
    ) {
        let schema = Schema::of(&[("k", DataType::I64), ("d", DataType::Date)]);
        let rows: Vec<Row> = rows_data.into_iter().map(|(k, d)| vec![k, d]).collect();
        let f = ColBlockFile::write(&rows, &schema, block);
        let b = Bounds { lo: lo.map(Value::I64), hi: hi.map(Value::I64) };
        let bounds: BTreeMap<usize, Bounds> = [(0usize, b.clone())].into_iter().collect();
        let (batch, stats) = f.read_pruned(&[0, 1], &bounds);
        prop_assert_eq!(stats.blocks_total, rows.len().div_ceil(block) as u64);
        // A NULL never satisfies a bounded comparison.
        let matches = |r: &Row| match &r[0] {
            Value::Null => false,
            v => b.lo.as_ref().is_none_or(|x| v >= x) && b.hi.as_ref().is_none_or(|x| v <= x),
        };
        let want: Vec<Row> = rows.iter().filter(|r| matches(r)).cloned().collect();
        let got: Vec<Row> = batch.to_rows().into_iter().filter(|r| matches(r)).collect();
        prop_assert_eq!(got, want);
    }
}
