//! # storage — file formats and storage structures
//!
//! Real (not modeled) implementations of the storage machinery the paper's
//! systems rely on:
//!
//! * [`compress`] — an LZ77-family byte compressor (greedy, 64 KB window)
//!   standing in for GZIP; real compressed sizes drive the I/O cost model,
//! * [`text`] — delimited text files (`dbgen`-style `.tbl` rows),
//! * [`rcfile`] — the RCFile layout \[He et al., ICDE 2011\]: row groups
//!   holding compressed per-column chunks, with lazy column projection,
//! * [`colblock`] — a columnar block format with per-block min/max
//!   statistics (block pruning), null bitmaps, and RLE/dictionary chunk
//!   encodings, decoding into vectorized `ColumnBatch`es,
//! * [`page`] — 8 KB slotted heap pages (SQL Server-style record storage),
//! * [`btree`] — an in-memory B+tree with page accounting,
//! * [`bufpool`] — an O(1) LRU buffer pool with dirty tracking.

#![forbid(unsafe_code)]

pub mod btree;
pub mod bufpool;
pub mod colblock;
pub mod compress;
pub mod page;
pub mod rcfile;
pub mod text;

pub use btree::BTree;
pub use bufpool::{BufferPool, PageId};
pub use colblock::{ColBlockFile, ScanStats};
pub use rcfile::RcFile;
