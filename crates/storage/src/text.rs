//! Delimited text encoding — the `dbgen .tbl` wire format (`|`-separated
//! fields, one row per line). This is what gets bulk-loaded into HDFS before
//! the RCFile conversion, and what `dwloader` ships to PDW compute nodes.

use relational::date;
use relational::{DataType, Row, Schema, Value};

/// Encode rows as `|`-delimited lines.
pub fn encode(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::new();
    for row in rows {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(b'|');
            }
            out.extend_from_slice(v.to_string().as_bytes());
        }
        out.push(b'\n');
    }
    out
}

/// Decode `|`-delimited lines against a schema.
///
/// Panics on malformed input: this format is only produced by [`encode`]
/// and the data generator, so corruption is a bug, not an input condition.
pub fn decode(data: &[u8], schema: &Schema) -> Vec<Row> {
    let text = std::str::from_utf8(data).expect("text file is not UTF-8");
    text.lines()
        .filter(|l| !l.is_empty())
        .map(|line| {
            let fields: Vec<&str> = line.split('|').collect();
            assert_eq!(
                fields.len(),
                schema.len(),
                "arity mismatch decoding line `{line}`"
            );
            fields
                .iter()
                .zip(schema.fields())
                .map(|(f, fld)| parse_field(f, fld.ty))
                .collect()
        })
        .collect()
}

fn parse_field(s: &str, ty: DataType) -> Value {
    if s == "NULL" {
        return Value::Null;
    }
    match ty {
        DataType::Bool => Value::Bool(s == "true"),
        DataType::I64 => Value::I64(s.parse().expect("bad i64")),
        DataType::F64 => Value::F64(s.parse().expect("bad f64")),
        DataType::Decimal => {
            let neg = s.starts_with('-');
            let t = s.trim_start_matches('-');
            let (whole, frac) = match t.split_once('.') {
                Some((w, f)) => (w, f),
                None => (t, "0"),
            };
            let whole: i64 = whole.parse().expect("bad decimal");
            let frac2 = format!("{:0<2}", frac);
            let frac: i64 = frac2[..2].parse().expect("bad decimal fraction");
            let cents = whole * 100 + frac;
            Value::Decimal(if neg { -cents } else { cents })
        }
        DataType::Date => {
            let mut it = s.split('-');
            let y: i32 = it
                .next()
                .expect("date literal has a year part")
                .parse()
                .expect("bad year");
            let m: u32 = it
                .next()
                .expect("date literal has a month part")
                .parse()
                .expect("bad month");
            let d: u32 = it
                .next()
                .expect("date literal has a day part")
                .parse()
                .expect("bad day");
            Value::Date(date::date(y, m, d))
        }
        DataType::Str => Value::str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[
            ("k", DataType::I64),
            ("price", DataType::Decimal),
            ("ship", DataType::Date),
            ("comment", DataType::Str),
        ])
    }

    #[test]
    fn round_trip() {
        let rows = vec![
            vec![
                Value::I64(42),
                Value::Decimal(123456),
                Value::Date(date::date(1995, 3, 15)),
                Value::str("quick brown fox"),
            ],
            vec![
                Value::I64(-7),
                Value::Decimal(-5),
                Value::Date(date::date(1992, 1, 1)),
                Value::str(""),
            ],
        ];
        let data = encode(&rows);
        let back = decode(&data, &schema());
        assert_eq!(back, rows);
    }

    #[test]
    fn null_round_trip() {
        let s = Schema::of(&[("a", DataType::I64)]);
        let rows = vec![vec![Value::Null]];
        assert_eq!(decode(&encode(&rows), &s), rows);
    }

    #[test]
    fn decimal_edge_cases() {
        assert_eq!(parse_field("0.07", DataType::Decimal), Value::Decimal(7));
        assert_eq!(parse_field("-0.07", DataType::Decimal), Value::Decimal(-7));
        assert_eq!(parse_field("10", DataType::Decimal), Value::Decimal(1000));
        assert_eq!(parse_field("10.5", DataType::Decimal), Value::Decimal(1050));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        decode(b"1|2\n", &Schema::of(&[("a", DataType::I64)]));
    }
}
