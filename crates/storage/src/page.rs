//! 8 KB slotted heap pages — SQL Server-style record storage.
//!
//! Layout: `[header | slot directory -> | ... free ... | <- record heap]`.
//! Records grow downward from the end; the slot directory grows upward after
//! the header. Deleting a record tombstones its slot; updating in place is
//! allowed when the new record fits the old footprint, otherwise the record
//! is moved within the page (or the update is rejected so the caller can
//! relocate the row).

/// Page capacity in bytes (SQL Server uses 8 KB pages; the paper's YCSB
/// analysis leans on "SQL Server reads 8 KB from disk per miss").
pub const PAGE_SIZE: usize = 8192;
const HEADER: usize = 8; // n_slots: u16, free_lower: u16, free_upper: u16, pad
const SLOT: usize = 4; // offset: u16, len: u16 (len 0 = tombstone)

/// A slotted page over an owned 8 KB buffer.
pub struct HeapPage {
    buf: Box<[u8; PAGE_SIZE]>,
}

/// Slot number within a page.
pub type SlotId = u16;

impl Default for HeapPage {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapPage {
    pub fn new() -> HeapPage {
        let mut p = HeapPage {
            buf: Box::new([0; PAGE_SIZE]),
        };
        p.set_n_slots(0);
        p.set_free_lower(HEADER as u16);
        p.set_free_upper(PAGE_SIZE as u16);
        p
    }

    fn n_slots(&self) -> u16 {
        u16::from_le_bytes([self.buf[0], self.buf[1]])
    }
    fn set_n_slots(&mut self, v: u16) {
        self.buf[0..2].copy_from_slice(&v.to_le_bytes());
    }
    fn free_lower(&self) -> u16 {
        u16::from_le_bytes([self.buf[2], self.buf[3]])
    }
    fn set_free_lower(&mut self, v: u16) {
        self.buf[2..4].copy_from_slice(&v.to_le_bytes());
    }
    fn free_upper(&self) -> u16 {
        u16::from_le_bytes([self.buf[4], self.buf[5]])
    }
    fn set_free_upper(&mut self, v: u16) {
        self.buf[4..6].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, id: SlotId) -> (u16, u16) {
        let base = HEADER + id as usize * SLOT;
        (
            u16::from_le_bytes([self.buf[base], self.buf[base + 1]]),
            u16::from_le_bytes([self.buf[base + 2], self.buf[base + 3]]),
        )
    }
    fn set_slot(&mut self, id: SlotId, offset: u16, len: u16) {
        let base = HEADER + id as usize * SLOT;
        self.buf[base..base + 2].copy_from_slice(&offset.to_le_bytes());
        self.buf[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Contiguous free space available for one more insert (slot + record).
    pub fn free_space(&self) -> usize {
        (self.free_upper() as usize)
            .saturating_sub(self.free_lower() as usize)
            .saturating_sub(SLOT)
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_records(&self) -> usize {
        (0..self.n_slots()).filter(|&i| self.slot(i).1 != 0).count()
    }

    /// Insert a record; returns its slot, or `None` if it doesn't fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<SlotId> {
        assert!(!record.is_empty() && record.len() < PAGE_SIZE - HEADER - SLOT);
        if self.free_space() < record.len() {
            return None;
        }
        let id = self.n_slots();
        let new_upper = self.free_upper() - record.len() as u16;
        self.buf[new_upper as usize..new_upper as usize + record.len()].copy_from_slice(record);
        self.set_slot(id, new_upper, record.len() as u16);
        self.set_free_upper(new_upper);
        self.set_free_lower(self.free_lower() + SLOT as u16);
        self.set_n_slots(id + 1);
        Some(id)
    }

    /// Read a record by slot (`None` for tombstones / out-of-range).
    pub fn get(&self, id: SlotId) -> Option<&[u8]> {
        if id >= self.n_slots() {
            return None;
        }
        let (off, len) = self.slot(id);
        if len == 0 {
            return None;
        }
        Some(&self.buf[off as usize..(off + len) as usize])
    }

    /// Update a record in place. Returns false if the new record is larger
    /// than the original footprint (caller must delete + re-insert
    /// elsewhere). Smaller updates shrink the slot length.
    pub fn update(&mut self, id: SlotId, record: &[u8]) -> bool {
        if id >= self.n_slots() {
            return false;
        }
        let (off, len) = self.slot(id);
        if len == 0 || record.len() > len as usize {
            return false;
        }
        self.buf[off as usize..off as usize + record.len()].copy_from_slice(record);
        self.set_slot(id, off, record.len() as u16);
        true
    }

    /// Tombstone a record. Space is reclaimed only by [`HeapPage::compact`].
    pub fn delete(&mut self, id: SlotId) -> bool {
        if id >= self.n_slots() || self.slot(id).1 == 0 {
            return false;
        }
        let (off, _) = self.slot(id);
        self.set_slot(id, off, 0);
        true
    }

    /// Rewrite the record heap to squeeze out tombstoned space. Slot ids
    /// remain stable (a tombstone keeps its slot).
    pub fn compact(&mut self) {
        let n = self.n_slots();
        let mut records: Vec<(SlotId, Vec<u8>)> = (0..n)
            .filter_map(|i| self.get(i).map(|r| (i, r.to_vec())))
            .collect();
        // Re-pack from the top of the page downward.
        let mut upper = PAGE_SIZE as u16;
        records.sort_by_key(|(i, _)| *i);
        for (i, rec) in records {
            upper -= rec.len() as u16;
            self.buf[upper as usize..upper as usize + rec.len()].copy_from_slice(&rec);
            self.set_slot(i, upper, rec.len() as u16);
        }
        self.set_free_upper(upper);
    }

    /// Iterate live records as `(slot, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        (0..self.n_slots()).filter_map(move |i| self.get(i).map(|r| (i, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = HeapPage::new();
        let a = p.insert(b"hello").expect("empty page has room");
        let b = p
            .insert(b"world!")
            .expect("page has room for two tiny records");
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn fills_up_with_1kb_records() {
        // The paper's YCSB records are 1 KB; 8 KB pages hold ~7 of them
        // (header + slots eat a little).
        let mut p = HeapPage::new();
        let rec = vec![0xAB; 1024];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        assert_eq!(n, 7);
    }

    #[test]
    fn delete_then_compact_reclaims() {
        let mut p = HeapPage::new();
        let rec = vec![1u8; 2500];
        let a = p.insert(&rec).expect("1 of 3 records fits");
        let _b = p.insert(&rec).expect("2 of 3 records fit");
        let c = p.insert(&rec).expect("3 of 3 records fit");
        assert!(p.insert(&rec).is_none()); // full: 3*2500 + overhead > 8192 - 2500
        assert!(p.delete(a));
        assert!(!p.delete(a), "double delete");
        p.compact();
        assert!(p.insert(&rec).is_some());
        assert_eq!(p.get(c), Some(&rec[..]), "surviving record intact");
    }

    #[test]
    fn update_in_place_and_too_big() {
        let mut p = HeapPage::new();
        let a = p.insert(b"0123456789").expect("empty page has room");
        assert!(p.update(a, b"abcdefghij"));
        assert_eq!(p.get(a), Some(&b"abcdefghij"[..]));
        assert!(p.update(a, b"short"));
        assert_eq!(p.get(a), Some(&b"short"[..]));
        assert!(!p.update(a, b"this is far too long now"));
    }

    #[test]
    fn get_out_of_range_is_none() {
        let p = HeapPage::new();
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(99), None);
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut p = HeapPage::new();
        let a = p.insert(b"a").expect("empty page has room");
        let _b = p.insert(b"b").expect("page has room for two tiny records");
        p.delete(a);
        let live: Vec<_> = p.iter().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(live, vec![b"b".to_vec()]);
    }
}
