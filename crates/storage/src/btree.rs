//! An in-memory B+tree with configurable fanout and page accounting.
//!
//! Used as the primary-key index in the OLTP engine and as the `_id` index
//! in the document store. Supports point get, upsert, ordered range scans
//! (what YCSB workload E issues), and lazy delete (keys are removed from
//! leaves without rebalancing — fine for the workloads here, where deletes
//! only happen on table drop; documented so nobody mistakes it for a
//! textbook delete).
//!
//! ```
//! use storage::BTree;
//!
//! let mut t: BTree<u64, &str> = BTree::new();
//! t.insert(10, "a");
//! t.insert(5, "b");
//! t.insert(20, "c");
//! assert_eq!(t.get(&5), Some(&"b"));
//! let scanned: Vec<u64> = t.scan_from(&6, 10).into_iter().map(|(k, _)| *k).collect();
//! assert_eq!(scanned, vec![10, 20]);
//! ```

use std::borrow::Borrow;

/// Default number of keys per node. With ~100-byte separators this makes a
/// node roughly page-sized.
pub const DEFAULT_ORDER: usize = 64;

enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
    },
    Internal {
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

/// B+tree map.
pub struct BTree<K, V> {
    root: Node<K, V>,
    order: usize,
    len: usize,
}

impl<K: Ord + Clone, V> Default for BTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BTree<K, V> {
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// `order` = max keys per node (min 4 to keep splits meaningful).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "order must be >= 4");
        BTree {
            root: Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            },
            order,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Upsert. Returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        let (prev, split) = insert_rec(&mut self.root, key, val, self.order);
        if prev.is_none() {
            self.len += 1;
        }
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Internal {
                    keys: Vec::new(),
                    children: Vec::new(),
                },
            );
            if let Node::Internal { keys, children } = &mut self.root {
                keys.push(sep);
                children.push(old_root);
                children.push(right);
            }
        }
        prev
    }

    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys
                        .binary_search_by(|k| k.borrow().cmp(key))
                        .ok()
                        .map(|i| &vals[i]);
                }
                Node::Internal { keys, children } => {
                    let i = keys.partition_point(|k| k.borrow() <= key);
                    node = &children[i];
                }
            }
        }
    }

    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys
                        .binary_search_by(|k| k.borrow().cmp(key))
                        .ok()
                        .map(|i| &mut vals[i]);
                }
                Node::Internal { keys, children } => {
                    let i = keys.partition_point(|k| k.borrow() <= key);
                    node = &mut children[i];
                }
            }
        }
    }

    /// Lazy delete: removes the entry from its leaf without rebalancing.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    if let Ok(i) = keys.binary_search_by(|k| k.borrow().cmp(key)) {
                        keys.remove(i);
                        self.len -= 1;
                        return Some(vals.remove(i));
                    }
                    return None;
                }
                Node::Internal { keys, children } => {
                    let i = keys.partition_point(|k| k.borrow() <= key);
                    node = &mut children[i];
                }
            }
        }
    }

    /// Ordered scan of at most `limit` entries with key >= `start`
    /// (YCSB workload E's short range scans).
    pub fn scan_from<Q>(&self, start: &Q, limit: usize) -> Vec<(&K, &V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut out = Vec::with_capacity(limit.min(1024));
        scan_rec(&self.root, start, limit, &mut out);
        out
    }

    /// In-order iteration over all entries.
    pub fn iter(&self) -> Vec<(&K, &V)> {
        let mut out = Vec::with_capacity(self.len);
        collect_all(&self.root, &mut out);
        out
    }

    /// Tree depth (1 = just a leaf). A 640 M-row index at order 64 is depth
    /// ~5; the paper's analysis assumes upper levels stay cached.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }

    /// Total node count (for index-size accounting).
    pub fn node_count(&self) -> usize {
        count_nodes(&self.root)
    }
}

/// Result of a recursive insert: the replaced value (if any) and a split
/// (separator key + new right sibling) to propagate upward.
type InsertOutcome<K, V> = (Option<V>, Option<(K, Node<K, V>)>);

fn insert_rec<K: Ord + Clone, V>(
    node: &mut Node<K, V>,
    key: K,
    val: V,
    order: usize,
) -> InsertOutcome<K, V> {
    match node {
        Node::Leaf { keys, vals } => match keys.binary_search(&key) {
            Ok(i) => (Some(std::mem::replace(&mut vals[i], val)), None),
            Err(i) => {
                keys.insert(i, key);
                vals.insert(i, val);
                if keys.len() > order {
                    let mid = keys.len() / 2;
                    let rkeys = keys.split_off(mid);
                    let rvals = vals.split_off(mid);
                    let sep = rkeys[0].clone();
                    (
                        None,
                        Some((
                            sep,
                            Node::Leaf {
                                keys: rkeys,
                                vals: rvals,
                            },
                        )),
                    )
                } else {
                    (None, None)
                }
            }
        },
        Node::Internal { keys, children } => {
            let i = keys.partition_point(|k| *k <= key);
            let (prev, split) = insert_rec(&mut children[i], key, val, order);
            if let Some((sep, right)) = split {
                keys.insert(i, sep);
                children.insert(i + 1, right);
                if keys.len() > order {
                    let mid = keys.len() / 2;
                    // Key at `mid` moves up as the separator.
                    let rkeys = keys.split_off(mid + 1);
                    let sep = keys.pop().expect("non-empty");
                    let rchildren = children.split_off(mid + 1);
                    return (
                        prev,
                        Some((
                            sep,
                            Node::Internal {
                                keys: rkeys,
                                children: rchildren,
                            },
                        )),
                    );
                }
            }
            (prev, None)
        }
    }
}

fn scan_rec<'a, K, V, Q>(
    node: &'a Node<K, V>,
    start: &Q,
    limit: usize,
    out: &mut Vec<(&'a K, &'a V)>,
) where
    K: Ord + Borrow<Q>,
    Q: Ord + ?Sized,
{
    if out.len() >= limit {
        return;
    }
    match node {
        Node::Leaf { keys, vals } => {
            let from = keys.partition_point(|k| k.borrow() < start);
            for i in from..keys.len() {
                if out.len() >= limit {
                    return;
                }
                out.push((&keys[i], &vals[i]));
            }
        }
        Node::Internal { keys, children } => {
            let from = keys.partition_point(|k| k.borrow() <= start);
            for child in &children[from..] {
                if out.len() >= limit {
                    return;
                }
                scan_rec(child, start, limit, out);
            }
        }
    }
}

fn collect_all<'a, K, V>(node: &'a Node<K, V>, out: &mut Vec<(&'a K, &'a V)>) {
    match node {
        Node::Leaf { keys, vals } => out.extend(keys.iter().zip(vals.iter())),
        Node::Internal { children, .. } => {
            for c in children {
                collect_all(c, out);
            }
        }
    }
}

fn count_nodes<K, V>(node: &Node<K, V>) -> usize {
    match node {
        Node::Leaf { .. } => 1,
        Node::Internal { children, .. } => 1 + children.iter().map(count_nodes).sum::<usize>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_many() {
        let mut t = BTree::with_order(8);
        for i in (0..10_000).rev() {
            assert!(t.insert(i, i * 2).is_none());
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000 {
            assert_eq!(t.get(&i), Some(&(i * 2)));
        }
        assert_eq!(t.get(&10_001), None);
        assert!(t.depth() > 2, "tree should have split");
    }

    #[test]
    fn upsert_replaces() {
        let mut t: BTree<i32, &str> = BTree::new();
        assert!(t.insert(1, "a").is_none());
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn ordered_iteration() {
        let mut t = BTree::with_order(4);
        for i in [5, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            t.insert(i, ());
        }
        let keys: Vec<i32> = t.iter().into_iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_from_midpoint() {
        let mut t = BTree::with_order(6);
        for i in 0..1000 {
            t.insert(i * 2, i);
        }
        // start between keys
        let got: Vec<i64> = t
            .scan_from(&101i64, 5)
            .into_iter()
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![102, 104, 106, 108, 110]);
        // scan off the end
        let tail: Vec<i64> = t
            .scan_from(&1995i64, 10)
            .into_iter()
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(tail, vec![1996, 1998]);
    }

    #[test]
    fn remove_is_lazy_but_correct() {
        let mut t = BTree::with_order(4);
        for i in 0..100 {
            t.insert(i, i);
        }
        assert_eq!(t.remove(&50), Some(50));
        assert_eq!(t.remove(&50), None);
        assert_eq!(t.len(), 99);
        assert_eq!(t.get(&50), None);
        assert_eq!(t.get(&51), Some(&51));
    }

    #[test]
    fn get_mut_mutates() {
        let mut t: BTree<u64, u64> = BTree::new();
        t.insert(7, 1);
        *t.get_mut(&7).unwrap() += 10;
        assert_eq!(t.get(&7), Some(&11));
    }

    #[test]
    fn string_keys_with_borrowed_lookup() {
        let mut t: BTree<String, u32> = BTree::new();
        t.insert("user0000042".to_string(), 42);
        assert_eq!(t.get("user0000042"), Some(&42));
        let scanned = t.scan_from("user", 10);
        assert_eq!(scanned.len(), 1);
    }

    #[test]
    fn node_count_and_depth_grow() {
        let mut t = BTree::with_order(4);
        assert_eq!(t.depth(), 1);
        for i in 0..500 {
            t.insert(i, ());
        }
        assert!(t.node_count() > 100 / 4);
        assert!(t.depth() >= 3);
    }
}
