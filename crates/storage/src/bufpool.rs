//! An O(1) LRU buffer pool over abstract page ids, with dirty-page
//! tracking. The OLTP engines consult it on every record access to decide
//! whether a disk I/O must be charged; checkpoints drain the dirty set.
//!
//! Implementation: hash map + intrusive doubly-linked list over a slab, so
//! `access` is O(1) with no per-access allocation after warm-up.
//!
//! ```
//! use storage::bufpool::{Access, BufferPool};
//!
//! let mut pool = BufferPool::new(2);
//! assert!(matches!(pool.access(1, true), Access::Miss { .. }));
//! assert!(matches!(pool.access(2, false), Access::Miss { .. }));
//! assert_eq!(pool.access(1, false), Access::Hit);
//! // Page 1 (dirty) became MRU, so inserting page 3 evicts the clean
//! // page 2 — no write-back needed.
//! assert!(matches!(pool.access(3, false), Access::Miss { evicted_dirty: None }));
//! ```

use std::collections::HashMap;

/// Abstract page identifier (the engines derive it from table + page no).
pub type PageId = u64;

const NIL: usize = usize::MAX;

struct Entry {
    page: PageId,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Result of a page access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// Page was resident.
    Hit,
    /// Page had to be read; if eviction displaced a dirty page, it must be
    /// written back (the engine charges a disk write).
    Miss { evicted_dirty: Option<PageId> },
}

/// Fixed-capacity LRU pool.
pub struct BufferPool {
    capacity: usize,
    map: HashMap<PageId, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // MRU
    tail: usize, // LRU
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// `capacity` in pages (>= 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        BufferPool {
            capacity,
            map: HashMap::with_capacity(capacity * 2),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (p, n) = (self.slab[idx].prev, self.slab[idx].next);
        if p != NIL {
            self.slab[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slab[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Touch `page`; `dirty` marks it modified (write access).
    pub fn access(&mut self, page: PageId, dirty: bool) -> Access {
        if let Some(&idx) = self.map.get(&page) {
            self.hits += 1;
            self.slab[idx].dirty |= dirty;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return Access::Hit;
        }
        self.misses += 1;
        let mut evicted_dirty = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let e = &self.slab[lru];
            if e.dirty {
                evicted_dirty = Some(e.page);
            }
            self.map.remove(&e.page);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    page,
                    dirty,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    page,
                    dirty,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        Access::Miss { evicted_dirty }
    }

    /// Pages currently dirty (checkpoint working set).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        self.map
            .iter()
            .filter(|(_, &idx)| self.slab[idx].dirty)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Mark everything clean (checkpoint completed).
    pub fn mark_all_clean(&mut self) {
        for e in &mut self.slab {
            e.dirty = false;
        }
    }

    /// Drop all resident pages (the paper flushes memory between YCSB
    /// workloads). Statistics are reset too.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut p = BufferPool::new(2);
        assert!(matches!(p.access(1, false), Access::Miss { .. }));
        assert_eq!(p.access(1, false), Access::Hit);
        assert!(matches!(p.access(2, false), Access::Miss { .. }));
        assert_eq!(p.len(), 2);
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut p = BufferPool::new(2);
        p.access(1, false);
        p.access(2, false);
        p.access(1, false); // 1 is now MRU, 2 is LRU
        p.access(3, false); // evicts 2
        assert!(p.contains(1));
        assert!(!p.contains(2));
        assert!(p.contains(3));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut p = BufferPool::new(1);
        p.access(1, true);
        match p.access(2, false) {
            Access::Miss { evicted_dirty } => assert_eq!(evicted_dirty, Some(1)),
            _ => panic!("expected miss"),
        }
        // Clean page eviction reports no write-back.
        match p.access(3, false) {
            Access::Miss { evicted_dirty } => assert_eq!(evicted_dirty, None),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn dirty_bit_sticks_until_checkpoint() {
        let mut p = BufferPool::new(4);
        p.access(1, true);
        p.access(1, false); // read access must not clean it
        assert_eq!(p.dirty_pages(), vec![1]);
        p.mark_all_clean();
        assert!(p.dirty_pages().is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut p = BufferPool::new(2);
        p.access(1, true);
        p.clear();
        assert_eq!(p.len(), 0);
        assert_eq!(p.hits() + p.misses(), 0);
        assert!(matches!(p.access(1, false), Access::Miss { .. }));
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut p = BufferPool::new(100);
        for i in 0..100u64 {
            p.access(i, false);
        }
        for round in 0..5 {
            for i in 0..100u64 {
                assert_eq!(p.access(i, false), Access::Hit, "round {round} page {i}");
            }
        }
        assert_eq!(p.misses(), 100);
    }
}
