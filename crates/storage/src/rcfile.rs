//! The RCFile layout (He et al., ICDE 2011): rows are grouped into *row
//! groups*; within a group each column is stored contiguously and
//! compressed on its own. Readers that project a subset of columns only
//! decompress those chunks — but decompression is CPU-intensive, which is
//! exactly the "RCFile has a high CPU overhead" effect the paper measures
//! (≈ 70 MB/s per map task, CPU-bound).

use crate::compress::{self, varint};
use relational::{DataType, Row, Schema, Value};

/// Default rows per row group (sized so a group is a few MB, like Hive's
/// 4 MB default).
pub const DEFAULT_ROW_GROUP: usize = 16 * 1024;

/// One row group: per-column compressed chunks.
#[derive(Clone, Debug)]
pub struct RowGroup {
    pub n_rows: usize,
    /// Compressed bytes per column.
    pub columns: Vec<Vec<u8>>,
    /// Uncompressed bytes per column (for cost accounting).
    pub raw_sizes: Vec<u64>,
}

/// An RCFile: an ordered list of row groups plus the schema.
#[derive(Clone, Debug)]
pub struct RcFile {
    pub schema: Schema,
    pub groups: Vec<RowGroup>,
}

impl RcFile {
    /// Encode rows into row groups of `rows_per_group`.
    pub fn write(rows: &[Row], schema: &Schema, rows_per_group: usize) -> RcFile {
        assert!(rows_per_group > 0);
        let groups = rows
            .chunks(rows_per_group)
            .map(|chunk| encode_group(chunk, schema))
            .collect();
        RcFile {
            schema: schema.clone(),
            groups,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.groups.iter().map(|g| g.n_rows).sum()
    }

    /// Total compressed size (what HDFS stores and disks read).
    pub fn compressed_size(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.columns.iter().map(|c| c.len() as u64).sum::<u64>())
            .sum()
    }

    /// Compressed size of only the given columns (lazy projection reads).
    pub fn compressed_size_of(&self, cols: &[usize]) -> u64 {
        self.groups
            .iter()
            .map(|g| cols.iter().map(|&c| g.columns[c].len() as u64).sum::<u64>())
            .sum()
    }

    /// Total uncompressed size.
    pub fn uncompressed_size(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.raw_sizes.iter().sum::<u64>())
            .sum()
    }

    /// Decode every row.
    pub fn read_all(&self) -> Vec<Row> {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        self.read_columns(&all)
    }

    /// Decode a projection: output rows contain `cols` in the given order.
    pub fn read_columns(&self, cols: &[usize]) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.n_rows());
        for g in &self.groups {
            let decoded: Vec<Vec<Value>> = cols
                .iter()
                .map(|&c| decode_column(&g.columns[c], self.schema.field(c).ty, g.n_rows))
                .collect();
            for i in 0..g.n_rows {
                out.push(decoded.iter().map(|col| col[i].clone()).collect());
            }
        }
        out
    }
}

fn encode_group(rows: &[Row], schema: &Schema) -> RowGroup {
    let mut columns = Vec::with_capacity(schema.len());
    let mut raw_sizes = Vec::with_capacity(schema.len());
    for c in 0..schema.len() {
        let raw = encode_column(rows, c, schema.field(c).ty);
        raw_sizes.push(raw.len() as u64);
        columns.push(compress::compress(&raw));
    }
    RowGroup {
        n_rows: rows.len(),
        columns,
        raw_sizes,
    }
}

fn encode_column(rows: &[Row], c: usize, ty: DataType) -> Vec<u8> {
    let mut out = Vec::new();
    // Nulls bitmap.
    let mut bitmap = vec![0u8; rows.len().div_ceil(8)];
    for (i, row) in rows.iter().enumerate() {
        if row[c].is_null() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);
    for row in rows {
        match (&row[c], ty) {
            (Value::Null, _) => {}
            (Value::Bool(b), DataType::Bool) => out.push(*b as u8),
            (Value::I64(v), DataType::I64) => varint::write_u64(&mut out, varint::zigzag(*v)),
            (Value::F64(v), DataType::F64) => out.extend_from_slice(&v.to_le_bytes()),
            (Value::Decimal(v), DataType::Decimal) => {
                varint::write_u64(&mut out, varint::zigzag(*v))
            }
            (Value::Date(v), DataType::Date) => {
                varint::write_u64(&mut out, varint::zigzag(*v as i64))
            }
            (Value::Str(s), DataType::Str) => {
                varint::write_u64(&mut out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
            (v, t) => panic!("value {v:?} does not match column type {t:?}"),
        }
    }
    out
}

fn decode_column(compressed: &[u8], ty: DataType, n_rows: usize) -> Vec<Value> {
    let raw = compress::decompress(compressed);
    let bitmap_len = n_rows.div_ceil(8);
    let (bitmap, mut data) = raw.split_at(bitmap_len);
    let mut out = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            out.push(Value::Null);
            continue;
        }
        match ty {
            DataType::Bool => {
                out.push(Value::Bool(data[0] != 0));
                data = &data[1..];
            }
            DataType::I64 => {
                let (v, n) = varint::read_u64(data);
                out.push(Value::I64(varint::unzigzag(v)));
                data = &data[n..];
            }
            DataType::F64 => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&data[..8]);
                out.push(Value::F64(f64::from_le_bytes(b)));
                data = &data[8..];
            }
            DataType::Decimal => {
                let (v, n) = varint::read_u64(data);
                out.push(Value::Decimal(varint::unzigzag(v)));
                data = &data[n..];
            }
            DataType::Date => {
                let (v, n) = varint::read_u64(data);
                out.push(Value::Date(varint::unzigzag(v) as i32));
                data = &data[n..];
            }
            DataType::Str => {
                let (len, n) = varint::read_u64(data);
                data = &data[n..];
                let s = std::str::from_utf8(&data[..len as usize]).expect("bad utf8");
                out.push(Value::str(s));
                data = &data[len as usize..];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::date::date;

    fn schema() -> Schema {
        Schema::of(&[
            ("k", DataType::I64),
            ("price", DataType::Decimal),
            ("flag", DataType::Str),
            ("ship", DataType::Date),
            ("rate", DataType::F64),
        ])
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::I64(i as i64 * 32),
                    Value::Decimal(10_000 + (i % 1000) as i64),
                    Value::str(if i % 2 == 0 { "A" } else { "R" }),
                    Value::Date(date(1995, 1, 1) + (i % 2000) as i32),
                    Value::F64(i as f64 * 0.25),
                ]
            })
            .collect()
    }

    #[test]
    fn round_trip_all_columns() {
        let rows = sample_rows(5000);
        let f = RcFile::write(&rows, &schema(), 1024);
        assert_eq!(f.groups.len(), 5); // 5000 / 1024 → 5 groups
        assert_eq!(f.n_rows(), 5000);
        assert_eq!(f.read_all(), rows);
    }

    #[test]
    fn projection_reads_only_requested_columns() {
        let rows = sample_rows(100);
        let f = RcFile::write(&rows, &schema(), 64);
        let proj = f.read_columns(&[2, 0]);
        assert_eq!(proj.len(), 100);
        assert_eq!(proj[3], vec![Value::str("R"), Value::I64(96)]);
        // Projected compressed size strictly smaller than whole file.
        assert!(f.compressed_size_of(&[0]) < f.compressed_size());
    }

    #[test]
    fn compresses_tpch_like_data() {
        let rows = sample_rows(20_000);
        let f = RcFile::write(&rows, &schema(), DEFAULT_ROW_GROUP);
        let ratio = f.compressed_size() as f64 / f.uncompressed_size() as f64;
        assert!(ratio < 0.7, "expected some compression, ratio={ratio:.3}");
    }

    #[test]
    fn nulls_round_trip() {
        let s = Schema::of(&[("a", DataType::I64), ("b", DataType::Str)]);
        let rows = vec![
            vec![Value::Null, Value::str("x")],
            vec![Value::I64(1), Value::Null],
            vec![Value::Null, Value::Null],
        ];
        let f = RcFile::write(&rows, &s, 2);
        assert_eq!(f.read_all(), rows);
    }

    #[test]
    fn empty_file() {
        let f = RcFile::write(&[], &schema(), 128);
        assert_eq!(f.n_rows(), 0);
        assert_eq!(f.read_all(), Vec::<Row>::new());
        assert_eq!(f.compressed_size(), 0);
    }
}
