//! A columnar block format with block-level min/max pruning — the "what
//! would 2026 elephants do" counterpart to [`crate::rcfile`].
//!
//! Rows are grouped into fixed-size *blocks*; within a block every column
//! is stored as its own chunk carrying (a) per-block statistics — non-null
//! min/max and a null count — and (b) one of three light-weight encodings
//! chosen per chunk before the shared LZ77 pass from [`crate::compress`]:
//!
//! * [`Encoding::Plain`] — null bitmap + per-type serialization (the
//!   RCFile chunk layout),
//! * [`Encoding::Rle`] — run-length runs of `(count, value)`, the win for
//!   cluster-sorted columns such as `l_shipdate`,
//! * [`Encoding::Dict`] — a first-appearance-order dictionary plus
//!   per-row codes, the win for low-cardinality columns such as
//!   `l_shipmode`.
//!
//! The reader ([`ColBlockFile::read_pruned`]) takes the per-column
//! [`Bounds`] a predicate implies (see `Expr::column_bounds`) and skips
//! whole blocks whose statistics prove no row can match, decoding the
//! survivors straight into a vectorized [`ColumnBatch`]. Skipping is sound
//! even with NULLs present: a bounded comparison predicate never accepts a
//! NULL, so an all-NULL chunk — or one whose non-null range misses the
//! interval — cannot contain an accepted row.

use crate::compress::{self, varint};
use relational::batch::{Column, ColumnBatch};
use relational::expr::Bounds;
use relational::{DataType, Row, Schema, Value};
use std::collections::BTreeMap;

/// Default rows per block, sized for *similitude scale*: the simulated
/// datasets run ~25,000× smaller than paper scale, so a paper-scale
/// ~200k-row block maps to ~8 rows here. What the cost model needs is the
/// block *granularity* — how many stat-carrying units a file splits into —
/// not the byte count; keeping paper-scale blocks would leave every file a
/// single block and make min/max pruning vacuous at any simulated size.
pub const DEFAULT_ROWS_PER_BLOCK: usize = 8;

/// Dictionary encoding is only worth it below this cardinality.
const DICT_MAX: usize = 64;

/// Per-chunk statistics driving block pruning and NULL accounting.
/// `min`/`max` cover non-null values only; `None` means the chunk is
/// all-NULL (or empty).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub n_nulls: usize,
}

impl ColStats {
    fn over(vals: &[Value]) -> ColStats {
        let non_null = vals.iter().filter(|v| !v.is_null());
        ColStats {
            min: non_null.clone().min().cloned(),
            max: non_null.max().cloned(),
            n_nulls: vals.iter().filter(|v| v.is_null()).count(),
        }
    }
}

/// The chunk encoding picked for one column of one block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    Plain,
    Rle,
    Dict,
}

/// One column of one block: encoded, compressed bytes plus statistics.
#[derive(Clone, Debug)]
pub struct ColChunk {
    pub encoding: Encoding,
    /// Encoded then LZ77-compressed bytes (what disks store and read).
    pub data: Vec<u8>,
    /// Encoded size before compression (decode-cost accounting).
    pub raw_size: u64,
    pub stats: ColStats,
}

/// One block: a fixed-size run of rows stored column-major.
#[derive(Clone, Debug)]
pub struct Block {
    pub n_rows: usize,
    pub cols: Vec<ColChunk>,
}

/// A columnar block file: schema plus an ordered list of blocks.
#[derive(Clone, Debug)]
pub struct ColBlockFile {
    pub schema: Schema,
    pub blocks: Vec<Block>,
}

/// What a pruned scan did: how many blocks existed, how many the min/max
/// statistics skipped, and the compressed bytes actually read. Merged
/// across files/partitions into the per-query numbers the engines report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    pub blocks_total: u64,
    pub blocks_pruned: u64,
    pub bytes_read: u64,
}

impl ScanStats {
    pub fn merge(&mut self, other: &ScanStats) {
        self.blocks_total += other.blocks_total;
        self.blocks_pruned += other.blocks_pruned;
        self.bytes_read += other.bytes_read;
    }
}

impl ColBlockFile {
    /// Encode rows into blocks of `rows_per_block`.
    pub fn write(rows: &[Row], schema: &Schema, rows_per_block: usize) -> ColBlockFile {
        assert!(rows_per_block > 0);
        let blocks = rows
            .chunks(rows_per_block)
            .map(|chunk| encode_block(chunk, schema))
            .collect();
        ColBlockFile {
            schema: schema.clone(),
            blocks,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.blocks.iter().map(|b| b.n_rows).sum()
    }

    /// Total compressed size (what HDFS stores and disks read).
    pub fn compressed_size(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.cols.iter().map(|c| c.data.len() as u64).sum::<u64>())
            .sum()
    }

    /// Compressed size of only the given columns (lazy projection reads).
    pub fn compressed_size_of(&self, cols: &[usize]) -> u64 {
        self.blocks
            .iter()
            .map(|b| {
                cols.iter()
                    .map(|&c| b.cols[c].data.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Total encoded-but-uncompressed size.
    pub fn uncompressed_size(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.cols.iter().map(|c| c.raw_size).sum::<u64>())
            .sum()
    }

    /// Decode every row (no projection, no pruning).
    pub fn read_all(&self) -> Vec<Row> {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        self.read_columns(&all)
    }

    /// Decode a projection: output rows contain `cols` in the given order.
    pub fn read_columns(&self, cols: &[usize]) -> Vec<Row> {
        self.read_pruned(cols, &BTreeMap::new()).0.to_rows()
    }

    /// The vectorized scan: decode the `cols` projection of every block
    /// whose statistics admit a row satisfying `bounds` (keys are column
    /// indices in this file's schema), concatenated into one
    /// [`ColumnBatch`], plus what the pruning achieved. Empty `bounds`
    /// reads everything.
    pub fn read_pruned(
        &self,
        cols: &[usize],
        bounds: &BTreeMap<usize, Bounds>,
    ) -> (ColumnBatch, ScanStats) {
        let mut stats = ScanStats::default();
        let mut vals: Vec<Vec<Value>> = cols.iter().map(|_| Vec::new()).collect();
        let mut len = 0usize;
        for block in &self.blocks {
            stats.blocks_total += 1;
            if !block_survives(block, bounds) {
                stats.blocks_pruned += 1;
                continue;
            }
            stats.bytes_read += cols
                .iter()
                .map(|&c| block.cols[c].data.len() as u64)
                .sum::<u64>();
            len += block.n_rows;
            for (out, &c) in vals.iter_mut().zip(cols) {
                out.extend(decode_chunk(
                    &block.cols[c],
                    self.schema.field(c).ty,
                    block.n_rows,
                ));
            }
        }
        let columns = vals
            .iter()
            .zip(cols)
            .map(|(v, &c)| Column::from_values_typed(v, self.schema.field(c).ty))
            .collect();
        (ColumnBatch { columns, len }, stats)
    }
}

/// Can any row of `block` satisfy a predicate implying `bounds`? False
/// only when the statistics *prove* no row can: some bounded column is
/// all-NULL, or its non-null min/max range misses the interval.
pub fn block_survives(block: &Block, bounds: &BTreeMap<usize, Bounds>) -> bool {
    for (&c, b) in bounds {
        let st = &block.cols[c].stats;
        match (&st.min, &st.max) {
            (Some(min), Some(max)) => {
                if b.lo.as_ref().is_some_and(|lo| max < lo)
                    || b.hi.as_ref().is_some_and(|hi| min > hi)
                {
                    return false;
                }
            }
            // All-NULL chunk: a bounded predicate never accepts NULL.
            _ => return false,
        }
    }
    true
}

fn encode_block(rows: &[Row], schema: &Schema) -> Block {
    let cols = (0..schema.len())
        .map(|c| {
            let vals: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            encode_chunk(&vals, schema.field(c).ty)
        })
        .collect();
    Block {
        n_rows: rows.len(),
        cols,
    }
}

fn encode_chunk(vals: &[Value], ty: DataType) -> ColChunk {
    let stats = ColStats::over(vals);
    let n = vals.len();
    let runs = count_runs(vals);
    let ndv = distinct_non_null(vals);
    // Prefer RLE when values cluster into few runs (sorted data), then a
    // dictionary for low-cardinality columns, else the plain layout. The
    // thresholds only affect size/speed, never correctness — every
    // encoding round-trips exactly.
    let encoding = if n > 0 && runs * 4 <= n {
        Encoding::Rle
    } else if n > 0 && ndv <= DICT_MAX && ndv * 4 <= n {
        Encoding::Dict
    } else {
        Encoding::Plain
    };
    let raw = match encoding {
        Encoding::Plain => encode_plain(vals, ty),
        Encoding::Rle => encode_rle(vals, ty),
        Encoding::Dict => encode_dict(vals, ty),
    };
    ColChunk {
        encoding,
        raw_size: raw.len() as u64,
        data: compress::compress(&raw),
        stats,
    }
}

fn decode_chunk(chunk: &ColChunk, ty: DataType, n_rows: usize) -> Vec<Value> {
    let raw = compress::decompress(&chunk.data);
    match chunk.encoding {
        Encoding::Plain => decode_plain(&raw, ty, n_rows),
        Encoding::Rle => decode_rle(&raw, ty, n_rows),
        Encoding::Dict => decode_dict(&raw, ty, n_rows),
    }
}

fn count_runs(vals: &[Value]) -> usize {
    let mut runs = 0;
    let mut prev: Option<&Value> = None;
    for v in vals {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    runs
}

fn distinct_non_null(vals: &[Value]) -> usize {
    let mut seen: std::collections::BTreeSet<&Value> = std::collections::BTreeSet::new();
    for v in vals {
        if !v.is_null() {
            seen.insert(v);
            if seen.len() > DICT_MAX {
                break; // enough to disqualify the dictionary
            }
        }
    }
    seen.len()
}

// ---- value serialization (shared by all encodings) -------------------------

fn encode_value(out: &mut Vec<u8>, v: &Value, ty: DataType) {
    match (v, ty) {
        (Value::Bool(b), DataType::Bool) => out.push(*b as u8),
        (Value::I64(v), DataType::I64) => varint::write_u64(out, varint::zigzag(*v)),
        (Value::F64(v), DataType::F64) => out.extend_from_slice(&v.to_le_bytes()),
        (Value::Decimal(v), DataType::Decimal) => varint::write_u64(out, varint::zigzag(*v)),
        (Value::Date(v), DataType::Date) => varint::write_u64(out, varint::zigzag(*v as i64)),
        (Value::Str(s), DataType::Str) => {
            varint::write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        (v, t) => panic!("value {v:?} does not match column type {t:?}"),
    }
}

fn decode_value(data: &mut &[u8], ty: DataType) -> Value {
    match ty {
        DataType::Bool => {
            let v = Value::Bool(data[0] != 0);
            *data = &data[1..];
            v
        }
        DataType::I64 => {
            let (v, n) = varint::read_u64(data);
            *data = &data[n..];
            Value::I64(varint::unzigzag(v))
        }
        DataType::F64 => {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[..8]);
            *data = &data[8..];
            Value::F64(f64::from_le_bytes(b))
        }
        DataType::Decimal => {
            let (v, n) = varint::read_u64(data);
            *data = &data[n..];
            Value::Decimal(varint::unzigzag(v))
        }
        DataType::Date => {
            let (v, n) = varint::read_u64(data);
            *data = &data[n..];
            Value::Date(varint::unzigzag(v) as i32)
        }
        DataType::Str => {
            let (len, n) = varint::read_u64(data);
            *data = &data[n..];
            let s = std::str::from_utf8(&data[..len as usize]).expect("bad utf8");
            let v = Value::str(s);
            *data = &data[len as usize..];
            v
        }
    }
}

// ---- Plain: null bitmap + per-type serialization ---------------------------

fn encode_plain(vals: &[Value], ty: DataType) -> Vec<u8> {
    let mut out = vec![0u8; vals.len().div_ceil(8)];
    for (i, v) in vals.iter().enumerate() {
        if v.is_null() {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    for v in vals {
        if !v.is_null() {
            encode_value(&mut out, v, ty);
        }
    }
    out
}

fn decode_plain(raw: &[u8], ty: DataType, n_rows: usize) -> Vec<Value> {
    let bitmap_len = n_rows.div_ceil(8);
    let (bitmap, mut data) = raw.split_at(bitmap_len);
    (0..n_rows)
        .map(|i| {
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                Value::Null
            } else {
                decode_value(&mut data, ty)
            }
        })
        .collect()
}

// ---- RLE: (run length, null flag, value) runs ------------------------------

fn encode_rle(vals: &[Value], ty: DataType) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < vals.len() {
        let mut j = i + 1;
        while j < vals.len() && vals[j] == vals[i] {
            j += 1;
        }
        varint::write_u64(&mut out, (j - i) as u64);
        if vals[i].is_null() {
            out.push(0);
        } else {
            out.push(1);
            encode_value(&mut out, &vals[i], ty);
        }
        i = j;
    }
    out
}

fn decode_rle(raw: &[u8], ty: DataType, n_rows: usize) -> Vec<Value> {
    let mut data = raw;
    let mut out = Vec::with_capacity(n_rows);
    while out.len() < n_rows {
        let (run, n) = varint::read_u64(data);
        data = &data[n..];
        let flag = data[0];
        data = &data[1..];
        let v = if flag == 0 {
            Value::Null
        } else {
            decode_value(&mut data, ty)
        };
        out.extend(std::iter::repeat_n(v, run as usize));
    }
    out
}

// ---- Dict: first-appearance dictionary + null bitmap + codes ---------------

fn encode_dict(vals: &[Value], ty: DataType) -> Vec<u8> {
    let mut dict: Vec<&Value> = Vec::new();
    let mut codes: BTreeMap<&Value, u64> = BTreeMap::new();
    for v in vals {
        if !v.is_null() && !codes.contains_key(v) {
            codes.insert(v, dict.len() as u64);
            dict.push(v);
        }
    }
    let mut out = Vec::new();
    varint::write_u64(&mut out, dict.len() as u64);
    for v in &dict {
        encode_value(&mut out, v, ty);
    }
    let bitmap_at = out.len();
    out.extend(std::iter::repeat_n(0u8, vals.len().div_ceil(8)));
    for (i, v) in vals.iter().enumerate() {
        if v.is_null() {
            out[bitmap_at + i / 8] |= 1 << (i % 8);
        }
    }
    for v in vals {
        if !v.is_null() {
            varint::write_u64(&mut out, codes[v]);
        }
    }
    out
}

fn decode_dict(raw: &[u8], ty: DataType, n_rows: usize) -> Vec<Value> {
    let mut data = raw;
    let (dict_len, n) = varint::read_u64(data);
    data = &data[n..];
    let dict: Vec<Value> = (0..dict_len).map(|_| decode_value(&mut data, ty)).collect();
    let bitmap_len = n_rows.div_ceil(8);
    let (bitmap, mut data) = data.split_at(bitmap_len);
    (0..n_rows)
        .map(|i| {
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                Value::Null
            } else {
                let (code, n) = varint::read_u64(data);
                data = &data[n..];
                dict[code as usize].clone()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::date::date;

    fn schema() -> Schema {
        Schema::of(&[
            ("k", DataType::I64),
            ("price", DataType::Decimal),
            ("flag", DataType::Str),
            ("ship", DataType::Date),
            ("rate", DataType::F64),
        ])
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::I64(i as i64 * 32),
                    Value::Decimal(10_000 + (i % 1000) as i64),
                    Value::str(if i % 2 == 0 { "A" } else { "R" }),
                    Value::Date(date(1995, 1, 1) + (i / 512) as i32),
                    Value::F64(i as f64 * 0.25),
                ]
            })
            .collect()
    }

    #[test]
    fn round_trip_all_columns() {
        let rows = sample_rows(5000);
        let f = ColBlockFile::write(&rows, &schema(), 1024);
        assert_eq!(f.blocks.len(), 5);
        assert_eq!(f.n_rows(), 5000);
        assert_eq!(f.read_all(), rows);
    }

    #[test]
    fn projection_reads_only_requested_columns() {
        let rows = sample_rows(100);
        let f = ColBlockFile::write(&rows, &schema(), 64);
        let proj = f.read_columns(&[2, 0]);
        assert_eq!(proj.len(), 100);
        assert_eq!(proj[3], vec![Value::str("R"), Value::I64(96)]);
        assert!(f.compressed_size_of(&[0]) < f.compressed_size());
    }

    #[test]
    fn chunk_encodings_match_data_shape() {
        let rows = sample_rows(2048);
        let f = ColBlockFile::write(&rows, &schema(), 256);
        let b = &f.blocks[0];
        // Monotone unique keys: nothing to exploit.
        assert_eq!(b.cols[0].encoding, Encoding::Plain);
        // Two-value flag column alternating A/R: dictionary (runs of 1).
        assert_eq!(b.cols[2].encoding, Encoding::Dict);
        // Date advances every 512 rows: long runs → RLE.
        assert_eq!(b.cols[3].encoding, Encoding::Rle);
        // Each block carries non-null min/max per column.
        assert_eq!(b.cols[0].stats.min, Some(Value::I64(0)));
        assert_eq!(b.cols[0].stats.max, Some(Value::I64(255 * 32)));
        assert_eq!(b.cols[0].stats.n_nulls, 0);
    }

    #[test]
    fn min_max_pruning_skips_out_of_range_blocks() {
        let rows = sample_rows(2048); // keys 0..65536 in sorted order
        let f = ColBlockFile::write(&rows, &schema(), 256);
        let mut bounds = BTreeMap::new();
        bounds.insert(
            0usize,
            Bounds {
                lo: Some(Value::I64(40_000)),
                hi: Some(Value::I64(41_000)),
            },
        );
        let (batch, stats) = f.read_pruned(&[0], &bounds);
        assert_eq!(stats.blocks_total, 8);
        assert!(stats.blocks_pruned >= 6, "pruned {}", stats.blocks_pruned);
        assert!(stats.bytes_read < f.compressed_size_of(&[0]));
        // Survivors still contain every matching row.
        let got: Vec<i64> = batch
            .to_rows()
            .into_iter()
            .filter_map(|r| match r[0] {
                Value::I64(v) if (40_000..=41_000).contains(&v) => Some(v),
                _ => None,
            })
            .collect();
        let want: Vec<i64> = (0..2048)
            .map(|i| i * 32)
            .filter(|v| (40_000..=41_000).contains(v))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn all_null_chunk_prunes_under_any_bound() {
        let s = Schema::of(&[("a", DataType::I64)]);
        let rows = vec![vec![Value::Null], vec![Value::Null]];
        let f = ColBlockFile::write(&rows, &s, 16);
        let mut bounds = BTreeMap::new();
        bounds.insert(
            0usize,
            Bounds {
                lo: None,
                hi: Some(Value::I64(100)),
            },
        );
        let (batch, stats) = f.read_pruned(&[0], &bounds);
        assert_eq!(stats.blocks_pruned, 1);
        assert_eq!(batch.len, 0);
    }

    #[test]
    fn nulls_round_trip_across_encodings() {
        let s = Schema::of(&[("a", DataType::I64), ("b", DataType::Str)]);
        // Long null runs force RLE; the string column stays dictionary-able.
        let mut rows: Vec<Row> = Vec::new();
        for i in 0..64 {
            rows.push(vec![
                if i % 32 < 16 {
                    Value::Null
                } else {
                    Value::I64(7)
                },
                if i % 8 == 0 {
                    Value::Null
                } else {
                    Value::str("x")
                },
            ]);
        }
        let f = ColBlockFile::write(&rows, &s, 32);
        assert_eq!(f.read_all(), rows);
        assert_eq!(f.blocks[0].cols[0].stats.n_nulls, 16);
    }

    #[test]
    fn empty_file() {
        let f = ColBlockFile::write(&[], &schema(), 128);
        assert_eq!(f.n_rows(), 0);
        assert_eq!(f.read_all(), Vec::<Row>::new());
        assert_eq!(f.compressed_size(), 0);
        let (batch, stats) = f.read_pruned(&[1, 3], &BTreeMap::new());
        assert_eq!(batch.len, 0);
        assert_eq!(batch.width(), 2);
        assert_eq!(stats, ScanStats::default());
    }
}
