//! A small LZ77-family compressor standing in for GZIP in the RCFile format.
//!
//! Format: a stream of tokens.
//! * `0x00..=0x7F` — literal run: control byte holds `len-1` (1..=128
//!   literal bytes follow).
//! * `0x80..=0xFF` — match: control byte holds `0x80 | (len-MIN_MATCH)`
//!   (match length `MIN_MATCH..=MIN_MATCH+127`), followed by a little-endian
//!   `u16` back-distance (1..=65535).
//!
//! Greedy matching via a hash table over 4-byte prefixes. Compression
//! ratios on TPC-H-like data land near the paper's GZIP-on-RCFile ratio
//! (~0.3–0.4) because column-major chunks are highly self-similar.

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 127;
const WINDOW: usize = 65_535;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`. Always succeeds; worst case ~= input + input/128 + 1.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(128);
            out.push((n - 1) as u8);
            out.extend_from_slice(&input[s..s + n]);
            s += n;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(input, i);
        let cand = table[h];
        table[h] = i;
        let mut matched = 0usize;
        if cand != usize::MAX && i - cand <= WINDOW && input[cand..cand + 4] == input[i..i + 4] {
            let limit = (input.len() - i).min(MAX_MATCH);
            let mut l = 4;
            while l < limit && input[cand + l] == input[i + l] {
                l += 1;
            }
            matched = l;
        }
        if matched >= MIN_MATCH {
            flush_literals(&mut out, lit_start, i, input);
            let dist = (i - cand) as u16;
            out.push(0x80 | (matched - MIN_MATCH) as u8);
            out.extend_from_slice(&dist.to_le_bytes());
            // Index a few positions inside the match to keep finding overlaps.
            let end = i + matched;
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < end {
                table[hash4(input, j)] = j;
                j += 1;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, lit_start, input.len(), input);
    out
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(mut input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() * 3);
    while let Some((&ctrl, rest)) = input.split_first() {
        input = rest;
        if ctrl < 0x80 {
            let n = ctrl as usize + 1;
            out.extend_from_slice(&input[..n]);
            input = &input[n..];
        } else {
            let len = (ctrl & 0x7F) as usize + MIN_MATCH;
            let dist = u16::from_le_bytes([input[0], input[1]]) as usize;
            input = &input[2..];
            let start = out.len() - dist;
            // Byte-at-a-time copy: matches may overlap their own output.
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    out
}

/// Varint + zigzag helpers used by the column serializers.
pub mod varint {
    /// Append an unsigned LEB128 varint.
    pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let b = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                out.push(b);
                return;
            }
            out.push(b | 0x80);
        }
    }

    /// Read an unsigned varint, returning (value, bytes consumed).
    pub fn read_u64(data: &[u8]) -> (u64, usize) {
        let mut v = 0u64;
        let mut shift = 0;
        for (i, &b) in data.iter().enumerate() {
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return (v, i + 1);
            }
            shift += 7;
        }
        panic!("truncated varint");
    }

    pub fn zigzag(v: i64) -> u64 {
        ((v << 1) ^ (v >> 63)) as u64
    }

    pub fn unzigzag(v: u64) -> i64 {
        ((v >> 1) as i64) ^ -((v & 1) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c);
        assert_eq!(d, data, "round trip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = b"FURNITURE|BUILDING|AUTOMOBILE|"
            .iter()
            .cycle()
            .take(30_000)
            .copied()
            .collect();
        let c = compress(&data);
        assert!(
            (c.len() as f64) < data.len() as f64 * 0.15,
            "ratio {} too poor",
            c.len() as f64 / data.len() as f64
        );
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_survives() {
        // Pseudo-random bytes: xorshift.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 64 + 16);
        round_trip(&data);
    }

    #[test]
    fn overlapping_matches() {
        round_trip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab");
        round_trip(b"abcabcabcabcabcabcabcabcabcabcabcabcabc");
    }

    #[test]
    fn varint_round_trip() {
        use varint::*;
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (back, n) = read_u64(&buf);
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
