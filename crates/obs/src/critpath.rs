//! Critical-path extraction and blame attribution.
//!
//! The probe stream says *what happened*; this module says *why it took
//! that long*. [`CritPathProbe`] reconstructs each phase span's blocking
//! structure from the kernel's span↔resource linkage (every
//! `Enqueued`/`ServiceStarted`/`ServiceCompleted` carries the issuing
//! span's id as `ctx` — see `simkit::probe`), walks the span backwards
//! along its last-blocking requests, and partitions **every nanosecond**
//! of the span's elapsed time into:
//!
//! * `<kind>.svc` — a disk / CPU / NIC server was doing this span's work,
//! * `<kind>.que` — the span's last-blocking request sat queued behind
//!   other work (contention), or
//! * `stall` — no request of the span was outstanding (setup delays,
//!   dispatch gaps, slot waits, barriers).
//!
//! The walk is exact: the segments tile `[start, end]` with no gaps or
//! overlaps, so per-span blame sums to the span's elapsed time and the
//! critical path can never exceed wall clock (`crates/obs/tests/`
//! pins both as properties). Everything is integer arithmetic over the
//! deterministic probe stream, so the report is byte-reproducible and
//! CI byte-diff gates it (`results/critpath_q5.txt`).

use simkit::probe::{Probe, ProbeEvent};
use simkit::trace::ResKind;
use simkit::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Classify a cluster resource by its conventional name (same rules the
/// ASCII strips use). Unknown names fall out of per-kind blame and their
/// time reports as `stall`.
fn kind_of(name: &str) -> Option<ResKind> {
    if name.contains("disk") || name.contains("hdfs") {
        Some(ResKind::Disk)
    } else if name.contains("cpu") {
        Some(ResKind::Cpu)
    } else if name.contains("nic") || name.contains(".rx") || name.contains(".tx") {
        Some(ResKind::Net)
    } else {
        None
    }
}

/// What one critical-path segment was waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlameKind {
    /// A server of this resource kind was serving the span's request.
    Service(ResKind),
    /// The span's last-blocking request was queued on this resource kind.
    Queue(ResKind),
    /// No request of the span was outstanding (setup, dispatch, barrier).
    Stall,
}

/// One segment of a span's critical path; segments tile `[start, end]`.
#[derive(Clone, Copy, Debug)]
pub struct CritSeg {
    pub from: SimTime,
    pub to: SimTime,
    pub kind: BlameKind,
}

/// A completed request of one span, as seen by the probe.
#[derive(Clone, Copy, Debug)]
struct DoneReq {
    enq: SimTime,
    start: SimTime,
    done: SimTime,
    kind: Option<ResKind>,
    req: u64,
}

/// Per-span blame: the critical path and its per-kind totals.
#[derive(Clone, Debug)]
pub struct SpanBlame {
    pub name: String,
    pub node: Option<usize>,
    pub start: SimTime,
    pub end: SimTime,
    /// Completed requests the span issued (all of them, not just the ones
    /// on the critical path).
    pub requests: usize,
    /// Critical-path service time per [`ResKind::ALL`] order.
    pub service: [SimTime; 3],
    /// Critical-path queue wait per [`ResKind::ALL`] order.
    pub queue: [SimTime; 3],
    /// Critical-path time with no outstanding request.
    pub stall: SimTime,
    /// The path itself, in time order.
    pub path: Vec<CritSeg>,
}

impl SpanBlame {
    pub fn elapsed(&self) -> SimTime {
        self.end - self.start
    }

    /// Total length of the critical-path segments. Equal to
    /// [`SpanBlame::elapsed`] by construction (property-tested).
    pub fn path_len(&self) -> SimTime {
        self.path.iter().map(|s| s.to - s.from).sum()
    }

    /// All seven blame components in render order, as `(label, ns)`.
    pub fn components(&self) -> [(&'static str, SimTime); 7] {
        [
            (svc_label(ResKind::Disk), self.service[0]),
            (que_label(ResKind::Disk), self.queue[0]),
            (svc_label(ResKind::Cpu), self.service[1]),
            (que_label(ResKind::Cpu), self.queue[1]),
            (svc_label(ResKind::Net), self.service[2]),
            (que_label(ResKind::Net), self.queue[2]),
            ("stall", self.stall),
        ]
    }

    /// The dominant blame component as `(label, ns)`.
    pub fn dominant(&self) -> (&'static str, SimTime) {
        let mut best = ("stall", self.stall);
        for (i, k) in ResKind::ALL.iter().enumerate() {
            for (label, v) in [
                (svc_label(*k), self.service[i]),
                (que_label(*k), self.queue[i]),
            ] {
                if v > best.1 {
                    best = (label, v);
                }
            }
        }
        best
    }
}

/// A per-span dominant-cause ruling, distilled from a [`SpanBlame`] for
/// consumers that steer on *why* a phase took its time (e.g. an adaptive
/// re-planner raising a movement's effective cost when its span was
/// `net.que`-dominant) without carrying the whole critical path around.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Full span name as emitted (`job/phase` in a mix).
    pub span: String,
    /// Dominant blame component label (`disk.svc`, `net.que`, `stall`, …).
    pub label: &'static str,
    /// Dominant component's share of the span's elapsed time (0..=1).
    pub share: f64,
    /// Critical-path Net service seconds of the span.
    pub net_svc_secs: f64,
    /// Critical-path Net queue-wait seconds of the span.
    pub net_que_secs: f64,
    /// Span close time, seconds.
    pub at_secs: f64,
}

impl SpanBlame {
    /// Distill this span's blame into a [`Verdict`].
    pub fn verdict(&self) -> Verdict {
        let (label, ns) = self.dominant();
        let elapsed = self.elapsed();
        let net = ResKind::ALL.iter().position(|k| *k == ResKind::Net);
        let net = net.expect("Net is a ResKind");
        Verdict {
            span: self.name.clone(),
            label,
            share: if elapsed == 0 {
                0.0
            } else {
                ns as f64 / elapsed as f64
            },
            net_svc_secs: simkit::as_secs(self.service[net]),
            net_que_secs: simkit::as_secs(self.queue[net]),
            at_secs: simkit::as_secs(self.end),
        }
    }
}

fn svc_label(k: ResKind) -> &'static str {
    match k {
        ResKind::Disk => "disk.svc",
        ResKind::Cpu => "cpu.svc",
        ResKind::Net => "net.svc",
    }
}

fn que_label(k: ResKind) -> &'static str {
    match k {
        ResKind::Disk => "disk.que",
        ResKind::Cpu => "cpu.que",
        ResKind::Net => "net.que",
    }
}

/// A span still open (or being accumulated) in the collector.
struct SpanState {
    name: String,
    node: Option<usize>,
    start: SimTime,
    reqs: Vec<DoneReq>,
}

/// A request in flight: enqueue/start times plus its resource.
#[derive(Clone, Copy)]
struct LiveReq {
    enq: SimTime,
    start: SimTime,
    res: usize,
    ctx: u64,
}

/// Passive collector probe: feed it a run (alone or fanned out behind a
/// [`crate::Tee`] next to a [`crate::TimelineProbe`]) and call
/// [`CritPathProbe::report`] at the end.
#[derive(Default)]
pub struct CritPathProbe {
    /// Resource kind by dense resource index.
    kinds: Vec<Option<ResKind>>,
    /// In-flight requests by kernel request id.
    live: BTreeMap<u64, LiveReq>,
    /// Open spans by span id.
    open: BTreeMap<u64, SpanState>,
    /// Closed spans with their blame, in close order.
    spans: Vec<SpanBlame>,
    /// Completed ctx-tagged requests whose span was not open (should not
    /// happen with the cluster executor; counted, never silently dropped).
    pub orphaned: u64,
}

impl CritPathProbe {
    pub fn new() -> CritPathProbe {
        CritPathProbe::default()
    }

    /// Blame for every closed span, in close order.
    pub fn spans(&self) -> &[SpanBlame] {
        &self.spans
    }

    /// Dominant-cause [`Verdict`]s for every span closed so far, in close
    /// order. Reading this mid-run (e.g. from a mix re-planner at a phase
    /// boundary) is safe — the probe only appends on span close — and
    /// deterministic, since close order is event order.
    pub fn verdicts(&self) -> Vec<Verdict> {
        self.spans.iter().map(SpanBlame::verdict).collect()
    }

    /// Finish and summarize: consumes the collector, returns the report.
    pub fn report(self) -> CritPathReport {
        let start = self.spans.iter().map(|s| s.start).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.end).max().unwrap_or(0);
        CritPathReport {
            spans: self.spans,
            start,
            end,
            orphaned: self.orphaned,
        }
    }

    fn close_span(&mut self, id: u64, end: SimTime) {
        let Some(st) = self.open.remove(&id) else {
            return;
        };
        self.spans.push(blame(st, end));
    }
}

/// Walk `[start, end]` backwards: at each point the blame goes to the
/// last-blocking request — the completed request with the latest `done`
/// among those already enqueued. Its service interval blames the
/// resource's kind as `.svc`, its queue interval as `.que`, and any gap
/// until the next blocker is `stall`. Ties break on the kernel request id,
/// so the walk is deterministic.
fn blame(st: SpanState, end: SimTime) -> SpanBlame {
    let SpanState {
        name,
        node,
        start,
        mut reqs,
    } = st;
    reqs.sort_by(|a, b| {
        b.done
            .cmp(&a.done)
            .then(b.start.cmp(&a.start))
            .then(b.enq.cmp(&a.enq))
            .then(a.req.cmp(&b.req))
    });
    let mut path: Vec<CritSeg> = Vec::new();
    let mut push = |kind: BlameKind, from: SimTime, to: SimTime| {
        if to > from {
            path.push(CritSeg { from, to, kind });
        }
    };
    let mut t = end;
    let mut i = 0;
    while t > start {
        // Requests enqueued at or after `t` can never block `[start, t)`;
        // `t` only decreases, so the cursor never backtracks.
        while i < reqs.len() && reqs[i].enq >= t {
            i += 1;
        }
        let Some(r) = reqs.get(i).copied() else {
            push(BlameKind::Stall, start, t);
            break;
        };
        let done = r.done.min(t);
        if done <= start {
            // The latest blocker finished before the span even started
            // (clock clamp); everything left is stall.
            push(BlameKind::Stall, start, t);
            break;
        }
        push(BlameKind::Stall, done, t);
        let kind = r.kind.map_or(BlameKind::Stall, BlameKind::Service);
        let svc_from = r.start.max(start).min(done);
        push(kind, svc_from, done);
        let kind = r.kind.map_or(BlameKind::Stall, BlameKind::Queue);
        let que_from = r.enq.max(start).min(svc_from);
        push(kind, que_from, svc_from);
        t = que_from;
        i += 1;
    }
    path.reverse();
    let mut service = [0; 3];
    let mut queue = [0; 3];
    let mut stall = 0;
    for seg in &path {
        let len = seg.to - seg.from;
        match seg.kind {
            BlameKind::Service(k) => {
                service[ResKind::ALL.iter().position(|x| *x == k).expect("in ALL")] += len
            }
            BlameKind::Queue(k) => {
                queue[ResKind::ALL.iter().position(|x| *x == k).expect("in ALL")] += len
            }
            BlameKind::Stall => stall += len,
        }
    }
    SpanBlame {
        name,
        node,
        start,
        end,
        requests: reqs.len(),
        service,
        queue,
        stall,
        path,
    }
}

impl Probe for CritPathProbe {
    fn on_event(&mut self, ev: &ProbeEvent<'_>) {
        match *ev {
            ProbeEvent::ResourceRegistered { res, name, .. } => {
                let i = res.index();
                if self.kinds.len() <= i {
                    self.kinds.resize(i + 1, None);
                }
                self.kinds[i] = kind_of(name);
            }
            ProbeEvent::Enqueued {
                at,
                res,
                req,
                ctx: Some(ctx),
                ..
            } => {
                self.live.insert(
                    req,
                    LiveReq {
                        enq: at,
                        start: at,
                        res: res.index(),
                        ctx,
                    },
                );
            }
            ProbeEvent::ServiceStarted { at, req, .. } => {
                if let Some(r) = self.live.get_mut(&req) {
                    r.start = at;
                }
            }
            ProbeEvent::ServiceCompleted { at, req, .. } => {
                let Some(r) = self.live.remove(&req) else {
                    return;
                };
                match self.open.get_mut(&r.ctx) {
                    Some(span) => span.reqs.push(DoneReq {
                        enq: r.enq,
                        start: r.start,
                        done: at,
                        kind: self.kinds.get(r.res).copied().flatten(),
                        req,
                    }),
                    None => self.orphaned += 1,
                }
            }
            ProbeEvent::SpanOpened { at, name, node, id } => {
                self.open.insert(
                    id,
                    SpanState {
                        name: name.to_string(),
                        node,
                        start: at,
                        reqs: Vec::new(),
                    },
                );
            }
            ProbeEvent::SpanClosed { at, id, .. } => {
                self.close_span(id, at);
            }
            _ => {}
        }
    }
}

/// The finished analysis: per-span blame plus run totals.
#[derive(Clone, Debug)]
pub struct CritPathReport {
    pub spans: Vec<SpanBlame>,
    pub start: SimTime,
    pub end: SimTime,
    pub orphaned: u64,
}

impl CritPathReport {
    /// Run totals in render order:
    /// `(elapsed, service[3], queue[3], stall, requests)`.
    pub fn totals(&self) -> (SimTime, [SimTime; 3], [SimTime; 3], SimTime, usize) {
        let mut elapsed = 0;
        let mut service = [0; 3];
        let mut queue = [0; 3];
        let mut stall = 0;
        let mut requests = 0;
        for s in &self.spans {
            elapsed += s.elapsed();
            for i in 0..3 {
                service[i] += s.service[i];
                queue[i] += s.queue[i];
            }
            stall += s.stall;
            requests += s.requests;
        }
        (elapsed, service, queue, stall, requests)
    }

    /// Blame for the span named `name` starting nearest `start` (Chrome
    /// annotation lookup).
    pub fn find(&self, name: &str, start: SimTime) -> Option<&SpanBlame> {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .min_by_key(|s| s.start.abs_diff(start))
    }

    /// Deterministic text report: one row per span, a totals row, and a
    /// blame summary line. This is the byte-diff-gated artifact body.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path {title}: {:.1}s .. {:.1}s",
            self.start as f64 / 1e9,
            self.end as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}  verdict",
            "phase",
            "elapsed",
            "disk.svc",
            "disk.que",
            "cpu.svc",
            "cpu.que",
            "net.svc",
            "net.que",
            "stall",
            "reqs"
        );
        let secs = |t: SimTime| format!("{:.1}s", t as f64 / 1e9);
        let row = |out: &mut String,
                   name: &str,
                   elapsed: SimTime,
                   service: &[SimTime; 3],
                   queue: &[SimTime; 3],
                   stall: SimTime,
                   reqs: usize,
                   verdict: String| {
            let name: String = name.chars().take(24).collect();
            let _ = writeln!(
                out,
                "{name:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {reqs:>6}  {verdict}",
                secs(elapsed),
                secs(service[0]),
                secs(queue[0]),
                secs(service[1]),
                secs(queue[1]),
                secs(service[2]),
                secs(queue[2]),
                secs(stall),
            );
        };
        for s in &self.spans {
            let verdict = if s.elapsed() == 0 {
                "-".to_string()
            } else {
                let (label, v) = s.dominant();
                format!("{label} {:.0}%", v as f64 * 100.0 / s.elapsed() as f64)
            };
            row(
                &mut out,
                &s.name,
                s.elapsed(),
                &s.service,
                &s.queue,
                s.stall,
                s.requests,
                verdict,
            );
        }
        let (elapsed, service, queue, stall, requests) = self.totals();
        row(
            &mut out,
            "total",
            elapsed,
            &service,
            &queue,
            stall,
            requests,
            String::new(),
        );
        // A compact one-line summary for humans and greppers.
        if elapsed > 0 {
            let pct = |v: SimTime| v as f64 * 100.0 / elapsed as f64;
            let mut parts: Vec<String> = Vec::new();
            for (i, k) in ResKind::ALL.iter().enumerate() {
                parts.push(format!("{} {:.1}%", svc_label(*k), pct(service[i])));
                parts.push(format!("{} {:.1}%", que_label(*k), pct(queue[i])));
            }
            parts.push(format!("stall {:.1}%", pct(stall)));
            let _ = writeln!(out, "blame: {}", parts.join(" · "));
        }
        if self.orphaned > 0 {
            let _ = writeln!(
                out,
                "({} requests completed outside any span)",
                self.orphaned
            );
        }
        out
    }
}
