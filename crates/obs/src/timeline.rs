//! The [`TimelineProbe`]: a [`Probe`] that folds the event stream into
//! fixed-width sim-time buckets.
//!
//! Per resource it keeps a *time-weighted* busy integral (how many servers
//! were in service, integrated over each bucket) and queue-depth integral
//! (how many requests were waiting). Time weighting makes the series robust
//! to zero-duration transients: a request that enqueues and starts in the
//! same instant contributes nothing. Spans and task lifecycle events are
//! kept exactly (not bucketed), so exporters can draw precise phase tracks.
//!
//! Bucket width adapts: when an event lands past `max_buckets`, the width
//! doubles and existing buckets merge pairwise, so memory stays bounded no
//! matter how long the run is while resolution degrades gracefully. The
//! whole process is deterministic — same event stream, same series.

use simkit::probe::{Probe, ProbeEvent};
use simkit::SimTime;

/// One fixed-width bucket of a resource's time series.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bucket {
    /// Server-seconds of service in this bucket, in nanoseconds
    /// (`busy_ns / width` = mean number of busy servers).
    pub busy_ns: u64,
    /// Request-seconds of queue waiting in this bucket, in nanoseconds
    /// (`depth_ns / width` = mean queue depth).
    pub depth_ns: u64,
}

/// Per-resource time series, indexed by bucket.
#[derive(Clone, Debug)]
pub struct ResSeries {
    pub name: String,
    pub servers: u32,
    pub completions: u64,
    buckets: Vec<Bucket>,
    busy: u32,
    depth: usize,
    last: SimTime,
}

impl ResSeries {
    fn new(name: String, servers: u32) -> ResSeries {
        ResSeries {
            name,
            servers,
            completions: 0,
            buckets: Vec::new(),
            busy: 0,
            depth: 0,
            last: 0,
        }
    }

    /// Integrate the current (busy, depth) state forward to `to`.
    fn advance(&mut self, width: SimTime, to: SimTime) {
        if to <= self.last {
            return;
        }
        if self.busy == 0 && self.depth == 0 {
            self.last = to;
            return;
        }
        let mut t = self.last;
        while t < to {
            let b = (t / width) as usize;
            let bucket_end = (b as SimTime + 1) * width;
            let seg = bucket_end.min(to) - t;
            if self.buckets.len() <= b {
                self.buckets.resize(b + 1, Bucket::default());
            }
            self.buckets[b].busy_ns += seg * self.busy as u64;
            self.buckets[b].depth_ns += seg * self.depth as u64;
            t += seg;
        }
        self.last = to;
    }

    fn halve(&mut self) {
        let n = self.buckets.len().div_ceil(2);
        let mut merged = Vec::with_capacity(n);
        for pair in self.buckets.chunks(2) {
            let mut b = pair[0];
            if let Some(second) = pair.get(1) {
                b.busy_ns += second.busy_ns;
                b.depth_ns += second.depth_ns;
            }
            merged.push(b);
        }
        self.buckets = merged;
    }

    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Mean fraction of this resource's servers in service during bucket
    /// `i` (0.0 for buckets past the recorded range).
    pub fn busy_fraction(&self, i: usize, width: SimTime) -> f64 {
        match self.buckets.get(i) {
            Some(b) => b.busy_ns as f64 / (width as f64 * self.servers as f64),
            None => 0.0,
        }
    }

    /// Mean number of waiting requests during bucket `i`.
    pub fn mean_depth(&self, i: usize, width: SimTime) -> f64 {
        match self.buckets.get(i) {
            Some(b) => b.depth_ns as f64 / width as f64,
            None => 0.0,
        }
    }

    /// Whether any bucket saw service or queueing.
    pub fn active(&self) -> bool {
        self.buckets.iter().any(|b| b.busy_ns > 0 || b.depth_ns > 0)
    }

    /// Whether any bucket saw queueing.
    pub fn ever_queued(&self) -> bool {
        self.buckets.iter().any(|b| b.depth_ns > 0)
    }
}

/// An exactly-recorded phase interval.
#[derive(Clone, Debug)]
pub struct SpanRec {
    pub name: String,
    pub node: Option<usize>,
    pub start: SimTime,
    pub end: SimTime,
}

/// A [`Probe`] producing per-resource busy/queue-depth timelines, exact
/// span intervals, and a task-concurrency track. See the module docs.
#[derive(Clone, Debug)]
pub struct TimelineProbe {
    width: SimTime,
    max_buckets: usize,
    resources: Vec<ResSeries>,
    spans: Vec<SpanRec>,
    open: Vec<(String, Option<usize>, SimTime)>,
    /// `(at, running)` samples, one per task start/finish transition.
    task_samples: Vec<(SimTime, u32)>,
    running: u32,
    retries: u64,
    end: SimTime,
}

impl TimelineProbe {
    /// A probe with `width`-wide buckets (width doubles whenever the run
    /// outgrows the default cap of 2048 buckets).
    pub fn new(width: SimTime) -> TimelineProbe {
        assert!(width > 0, "bucket width must be positive");
        TimelineProbe {
            width,
            max_buckets: 2048,
            resources: Vec::new(),
            spans: Vec::new(),
            open: Vec::new(),
            task_samples: Vec::new(),
            running: 0,
            retries: 0,
            end: 0,
        }
    }

    /// Override the bucket-count cap (tests; coarse exports).
    pub fn with_max_buckets(mut self, max: usize) -> TimelineProbe {
        assert!(max >= 2);
        self.max_buckets = max;
        self
    }

    /// Current bucket width in nanoseconds (may exceed the constructor
    /// width if the run was long enough to trigger rebucketing).
    pub fn bucket_width(&self) -> SimTime {
        self.width
    }

    /// Latest event timestamp seen.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Number of buckets needed to cover the run at the current width.
    ///
    /// Ceiling of `end / width`, never below 1. Integration is half-open
    /// (`[last, to)` in `ResSeries::advance`), so an event at exactly a
    /// bucket boundary — including `t == end` when `end` is a multiple of
    /// the width — belongs to the bucket *ending* there; the old
    /// `end / width + 1` formula advertised a phantom trailing bucket that
    /// no integral could ever fill.
    pub fn bucket_count(&self) -> usize {
        (self.end.div_ceil(self.width) as usize).max(1)
    }

    pub fn resources(&self) -> &[ResSeries] {
        &self.resources
    }

    /// Closed spans, in close order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    /// Task-concurrency transitions: `(at, running)` after each change.
    pub fn task_samples(&self) -> &[(SimTime, u32)] {
        &self.task_samples
    }

    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn see(&mut self, at: SimTime) {
        self.end = self.end.max(at);
        while at / self.width >= self.max_buckets as SimTime {
            self.width *= 2;
            for r in &mut self.resources {
                r.halve();
            }
        }
    }

    fn series(&mut self, idx: usize) -> &mut ResSeries {
        // Registration events always precede use, so `idx` is in range;
        // tolerate gaps defensively (a probe must never panic the run).
        if self.resources.len() <= idx {
            self.resources
                .resize_with(idx + 1, || ResSeries::new(String::new(), 1));
        }
        &mut self.resources[idx]
    }
}

impl Probe for TimelineProbe {
    fn on_event(&mut self, ev: &ProbeEvent<'_>) {
        match *ev {
            ProbeEvent::ResourceRegistered { res, name, servers } => {
                let s = self.series(res.index());
                s.name = name.to_string();
                s.servers = servers;
            }
            ProbeEvent::Enqueued { at, res, .. } => {
                self.see(at);
                let w = self.width;
                let s = self.series(res.index());
                s.advance(w, at);
                s.depth += 1;
            }
            ProbeEvent::ServiceStarted { at, res, .. } => {
                self.see(at);
                let w = self.width;
                let s = self.series(res.index());
                s.advance(w, at);
                s.depth = s.depth.saturating_sub(1);
                s.busy += 1;
            }
            ProbeEvent::ServiceCompleted { at, res, .. } => {
                self.see(at);
                let w = self.width;
                let s = self.series(res.index());
                s.advance(w, at);
                s.busy = s.busy.saturating_sub(1);
                s.completions += 1;
            }
            ProbeEvent::SpanOpened { at, name, node, .. } => {
                self.see(at);
                self.open.push((name.to_string(), node, at));
            }
            ProbeEvent::SpanClosed { at, .. } => {
                self.see(at);
                if let Some((name, node, start)) = self.open.pop() {
                    self.spans.push(SpanRec {
                        name,
                        node,
                        start,
                        end: at,
                    });
                }
            }
            ProbeEvent::TaskStarted { at, .. } => {
                self.see(at);
                self.running += 1;
                self.task_samples.push((at, self.running));
            }
            ProbeEvent::TaskFinished { at, .. } => {
                self.see(at);
                self.running = self.running.saturating_sub(1);
                self.task_samples.push((at, self.running));
            }
            ProbeEvent::TaskRetried { at, .. } => {
                self.see(at);
                self.retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{secs, Sim};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn probed_sim(width: SimTime) -> (Sim<()>, Rc<RefCell<TimelineProbe>>) {
        let mut sim: Sim<()> = Sim::new();
        let probe = Rc::new(RefCell::new(TimelineProbe::new(width)));
        sim.set_probe(Some(probe.clone()));
        (sim, probe)
    }

    #[test]
    fn busy_fraction_integrates_service_time() {
        let (mut sim, probe) = probed_sim(secs(1.0));
        let disk = sim.add_resource("disk", 1);
        // 1.5s of service starting at t=0: bucket 0 fully busy, bucket 1
        // half busy.
        sim.use_resource(disk, secs(1.5), |_, _| {});
        sim.run(&mut ());
        let p = probe.borrow();
        let s = &p.resources()[disk.index()];
        assert_eq!(s.name, "disk");
        assert!((s.busy_fraction(0, p.bucket_width()) - 1.0).abs() < 1e-9);
        assert!((s.busy_fraction(1, p.bucket_width()) - 0.5).abs() < 1e-9);
        assert_eq!(s.completions, 1);
    }

    #[test]
    fn queue_depth_is_time_weighted() {
        let (mut sim, probe) = probed_sim(secs(1.0));
        let disk = sim.add_resource("disk", 1);
        // Three 1s requests at t=0: queue depth is 2 during [0,1), 1 during
        // [1,2), 0 during [2,3).
        for _ in 0..3 {
            sim.use_resource(disk, secs(1.0), |_, _| {});
        }
        sim.run(&mut ());
        let p = probe.borrow();
        let s = &p.resources()[disk.index()];
        assert!((s.mean_depth(0, p.bucket_width()) - 2.0).abs() < 1e-9);
        assert!((s.mean_depth(1, p.bucket_width()) - 1.0).abs() < 1e-9);
        assert!(s.mean_depth(2, p.bucket_width()).abs() < 1e-9);
        assert!(s.ever_queued());
    }

    #[test]
    fn instantaneous_transits_contribute_nothing() {
        let (mut sim, probe) = probed_sim(secs(1.0));
        let disk = sim.add_resource("disk", 2);
        sim.use_resource(disk, secs(1.0), |_, _| {});
        sim.run(&mut ());
        let p = probe.borrow();
        let s = &p.resources()[disk.index()];
        // The request started immediately: zero queue-depth integral.
        assert_eq!(s.buckets()[0].depth_ns, 0);
        assert!((s.busy_fraction(0, p.bucket_width()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rebucketing_preserves_integrals() {
        let (mut sim, probe) = probed_sim(secs(1.0));
        {
            probe.borrow_mut().max_buckets = 4;
        }
        let disk = sim.add_resource("disk", 1);
        sim.use_resource(disk, secs(2.0), |_, _| {});
        // Idle gap, then more work far past the 4-bucket horizon.
        sim.after(secs(14.0), move |s, _| {
            s.use_resource(disk, secs(2.0), |_, _| {});
        });
        sim.run(&mut ());
        let p = probe.borrow();
        // 17s at cap 4 → width doubled to 8s.
        assert_eq!(p.bucket_width(), secs(8.0));
        let s = &p.resources()[disk.index()];
        let total_busy: u64 = s.buckets().iter().map(|b| b.busy_ns).sum();
        assert_eq!(total_busy, secs(4.0));
    }

    #[test]
    fn bucket_count_has_no_phantom_boundary_bucket() {
        let (mut sim, probe) = probed_sim(secs(1.0));
        let disk = sim.add_resource("disk", 1);
        // Run ends at exactly t = 3.0s — a bucket boundary. Half-open
        // integration fills buckets 0..3 and nothing can land in a fourth.
        for _ in 0..3 {
            sim.use_resource(disk, secs(1.0), |_, _| {});
        }
        sim.run(&mut ());
        let p = probe.borrow();
        assert_eq!(p.end(), secs(3.0));
        assert_eq!(p.bucket_count(), 3);
        let s = &p.resources()[disk.index()];
        assert!(s.buckets().len() <= p.bucket_count());
        // An end strictly inside a bucket still counts that bucket.
        let mut q = TimelineProbe::new(secs(1.0));
        Probe::on_event(
            &mut q,
            &ProbeEvent::SpanOpened {
                at: secs(2.5),
                name: "tail",
                node: None,
                id: 0,
            },
        );
        assert_eq!(q.bucket_count(), 3);
    }

    #[test]
    fn zero_duration_run_has_one_bucket_and_no_panic() {
        let (mut sim, probe) = probed_sim(secs(1.0));
        let disk = sim.add_resource("disk", 1);
        // Nothing ever scheduled: end stays 0.
        sim.run(&mut ());
        let p = probe.borrow();
        assert_eq!(p.end(), 0);
        assert_eq!(p.bucket_count(), 1);
        let s = &p.resources()[disk.index()];
        // Indexing within the advertised count is safe (empty-range reads).
        for i in 0..p.bucket_count() {
            assert_eq!(s.busy_fraction(i, p.bucket_width()), 0.0);
            assert_eq!(s.mean_depth(i, p.bucket_width()), 0.0);
        }
    }

    #[test]
    fn spans_and_tasks_are_recorded_exactly() {
        let mut p = TimelineProbe::new(secs(1.0));
        let mut ev = |e: ProbeEvent<'_>| Probe::on_event(&mut p, &e);
        ev(ProbeEvent::SpanOpened {
            at: secs(1.0),
            name: "map",
            node: None,
            id: 0,
        });
        ev(ProbeEvent::TaskStarted {
            at: secs(1.5),
            node: 0,
        });
        ev(ProbeEvent::TaskRetried {
            at: secs(2.0),
            node: 0,
        });
        ev(ProbeEvent::TaskFinished {
            at: secs(2.5),
            node: 0,
        });
        ev(ProbeEvent::SpanClosed {
            at: secs(3.0),
            name: "map",
            node: None,
            id: 0,
        });
        assert_eq!(p.spans().len(), 1);
        let s = &p.spans()[0];
        assert_eq!(
            (s.name.as_str(), s.start, s.end),
            ("map", secs(1.0), secs(3.0))
        );
        assert_eq!(p.task_samples(), &[(secs(1.5), 1), (secs(2.5), 0)]);
        assert_eq!(p.retries(), 1);
        assert_eq!(p.end(), secs(3.0));
    }
}
