//! ASCII timeline rendering: a Gantt row per phase span plus per-kind
//! cluster utilization strips, for terminals and committed text artifacts.
//!
//! ```text
//! timeline 0s .. 142.3s (2.2s/col)
//! q5/j1 map            |######........................................................|
//! q5/j1 shuffle        |......##......................................................|
//! disk busy            |985310........................................................|
//! ```
//!
//! Utilization strips print one digit per column: mean busy fraction
//! across the kind's servers, 0–9 (9 ≈ fully busy), `.` for idle.

use crate::timeline::TimelineProbe;
use simkit::SimTime;
use std::fmt::Write as _;

const COLS: usize = 64;
const LABEL: usize = 20;

/// Classify a cluster resource by its conventional name. Display-only:
/// exports carry the raw names.
fn kind_of(name: &str) -> Option<&'static str> {
    if name.contains("disk") || name.contains("hdfs") {
        Some("disk")
    } else if name.contains("cpu") {
        Some("cpu")
    } else if name.contains("nic") || name.contains(".rx") || name.contains(".tx") {
        Some("net")
    } else {
        None
    }
}

fn label(s: &str) -> String {
    let mut l: String = s.chars().take(LABEL).collect();
    while l.chars().count() < LABEL {
        l.push(' ');
    }
    l
}

/// Render `probe`'s spans and utilization strips over `[0, end]`.
pub fn ascii_timeline(title: &str, probe: &TimelineProbe) -> String {
    let end = probe.end().max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline {title}: 0s .. {:.1}s ({:.2}s/col)",
        end as f64 / 1e9,
        end as f64 / 1e9 / COLS as f64
    );
    for span in probe.spans() {
        let c0 = (span.start as u128 * COLS as u128 / end as u128) as usize;
        let c1 = (span.end as u128 * COLS as u128 / end as u128).min(COLS as u128 - 1) as usize;
        let mut bar = vec![b'.'; COLS];
        for cell in bar.iter_mut().take(c1 + 1).skip(c0) {
            *cell = b'#';
        }
        let _ = writeln!(
            out,
            "{} |{}| {:9.1}s ..{:9.1}s",
            label(&span.name),
            String::from_utf8(bar).expect("ascii"),
            span.start as f64 / 1e9,
            span.end as f64 / 1e9,
        );
    }
    for kind in ["disk", "cpu", "net"] {
        if let Some(strip) = util_strip(probe, end, kind) {
            let _ = writeln!(out, "{} |{strip}|", label(&format!("{kind} busy")));
        }
    }
    if !probe.task_samples().is_empty() {
        let _ = writeln!(
            out,
            "{} |{}|",
            label("tasks running"),
            task_strip(probe, end)
        );
    }
    out
}

/// One digit per column: mean busy fraction of all `kind` servers.
fn util_strip(probe: &TimelineProbe, end: SimTime, kind: &str) -> Option<String> {
    let width = probe.bucket_width();
    let mut busy_ns = vec![0u128; COLS];
    let mut servers = 0u64;
    // When a bucket is wider than a column, midpoint assignment drifts:
    // whole buckets of busy time land on one column while the columns the
    // bucket actually covers render idle. Prorate those buckets exactly
    // over the columns they overlap (integer math in ns×COLS units).
    // Narrow buckets keep the midpoint rule — each lands inside one
    // column, so proration would only redistribute boundary slivers.
    let prorate = width as u128 * COLS as u128 > end as u128;
    for res in probe.resources() {
        if kind_of(&res.name) != Some(kind) {
            continue;
        }
        servers += res.servers as u64;
        for (b, bucket) in res.buckets().iter().enumerate() {
            if bucket.busy_ns == 0 {
                continue;
            }
            if prorate {
                // Bucket b covers [b*width, (b+1)*width), clipped to the
                // rendered range; column c covers [c*end, (c+1)*end) in
                // ns×COLS units.
                let b_lo = b as u128 * width as u128 * COLS as u128;
                let b_hi = ((b as u128 + 1) * width as u128 * COLS as u128)
                    .min(end as u128 * COLS as u128);
                if b_hi <= b_lo {
                    continue;
                }
                let c0 = (b_lo / end as u128).min(COLS as u128 - 1) as usize;
                let c1 = ((b_hi - 1) / end as u128).min(COLS as u128 - 1) as usize;
                for (c, cell) in busy_ns.iter_mut().enumerate().take(c1 + 1).skip(c0) {
                    let lo = b_lo.max(c as u128 * end as u128);
                    let hi = b_hi.min((c as u128 + 1) * end as u128);
                    *cell += bucket.busy_ns as u128 * (hi - lo) / (b_hi - b_lo);
                }
            } else {
                // Assign each bucket's integral to the column containing
                // its midpoint — coarse, but stable and monotone.
                let mid = b as u128 * width as u128 + width as u128 / 2;
                let col = (mid * COLS as u128 / end as u128).min(COLS as u128 - 1) as usize;
                busy_ns[col] += bucket.busy_ns as u128;
            }
        }
    }
    if servers == 0 || busy_ns.iter().all(|&b| b == 0) {
        return None;
    }
    let col_ns = end as u128 * servers as u128 / COLS as u128;
    Some(
        busy_ns
            .iter()
            .map(|&b| digit(b as f64 / col_ns.max(1) as f64))
            .collect(),
    )
}

/// One digit per column: peak task concurrency, normalized to the maximum.
fn task_strip(probe: &TimelineProbe, end: SimTime) -> String {
    let mut peak = vec![0u32; COLS];
    let samples = probe.task_samples();
    let max = samples.iter().map(|&(_, r)| r).max().unwrap_or(0).max(1);
    for window in samples.windows(2) {
        let (t0, running) = window[0];
        let t1 = window[1].0;
        if running == 0 {
            continue;
        }
        let c0 = (t0 as u128 * COLS as u128 / end as u128).min(COLS as u128 - 1) as usize;
        let c1 = (t1 as u128 * COLS as u128 / end as u128).min(COLS as u128 - 1) as usize;
        for cell in peak.iter_mut().take(c1 + 1).skip(c0) {
            *cell = (*cell).max(running);
        }
    }
    if let Some(&(t, running)) = samples.last() {
        if running > 0 {
            let c = (t as u128 * COLS as u128 / end as u128).min(COLS as u128 - 1) as usize;
            peak[c] = peak[c].max(running);
        }
    }
    peak.iter().map(|&p| digit(p as f64 / max as f64)).collect()
}

fn digit(frac: f64) -> char {
    if frac <= 0.005 {
        '.'
    } else {
        let d = (frac * 10.0).floor().clamp(0.0, 9.0) as u32;
        char::from_digit(d.max(1), 10).expect("single digit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{secs, Sim};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn renders_span_rows_and_a_disk_strip() {
        let mut sim: Sim<()> = Sim::new();
        let probe = Rc::new(RefCell::new(TimelineProbe::new(secs(1.0))));
        sim.set_probe(Some(probe.clone()));
        let disk = sim.add_resource("node0.disk0", 1);
        sim.emit_probe(simkit::ProbeEvent::SpanOpened {
            at: 0,
            name: "scan:lineitem",
            node: None,
            id: 0,
        });
        sim.use_resource(disk, secs(8.0), |_, _| {});
        let end = sim.run(&mut ());
        sim.emit_probe(simkit::ProbeEvent::SpanClosed {
            at: end,
            name: "scan:lineitem",
            node: None,
            id: 0,
        });
        let text = ascii_timeline("test", &probe.borrow());
        assert!(text.contains("scan:lineitem"));
        assert!(text.contains("disk busy"));
        // The span covers the whole run: its bar is solid.
        let bar_line = text.lines().find(|l| l.contains("scan")).expect("row");
        assert!(bar_line.contains(&"#".repeat(COLS)));
        // Deterministic.
        assert_eq!(text, ascii_timeline("test", &probe.borrow()));
    }

    #[test]
    fn coarse_buckets_prorate_instead_of_drifting() {
        // Bucket width (10s) far exceeds the column width (16s/64 =
        // 0.25s): the old midpoint rule dumped the whole first bucket's
        // busy time on one column, rendering the rest of the busy region
        // idle and misaligning the strip against the span bars.
        let mut sim: Sim<()> = Sim::new();
        let probe = Rc::new(RefCell::new(TimelineProbe::new(secs(10.0))));
        sim.set_probe(Some(probe.clone()));
        let disk = sim.add_resource("node0.disk0-with-a-very-long-label", 1);
        sim.emit_probe(simkit::ProbeEvent::SpanOpened {
            at: 0,
            name: "scan:a-table-name-longer-than-the-gutter",
            node: None,
            id: 0,
        });
        sim.use_resource(disk, secs(8.0), |_, _| {});
        sim.after(secs(16.0), |_, _| {});
        let end = sim.run(&mut ());
        sim.emit_probe(simkit::ProbeEvent::SpanClosed {
            at: end,
            name: "scan:a-table-name-longer-than-the-gutter",
            node: None,
            id: 0,
        });
        let text = ascii_timeline("coarse", &probe.borrow());
        let strip = text
            .lines()
            .find(|l| l.starts_with("disk busy"))
            .expect("disk strip");
        let bar: &str = &strip[LABEL + 2..LABEL + 2 + COLS];
        let busy_cols = bar.chars().filter(|c| *c != '.').count();
        // 8s busy inside the 0–10s bucket spreads over the ~40 columns the
        // bucket covers, not one.
        assert!(busy_cols > 30, "prorated strip, got {bar:?}");
        // Nothing leaks past the bucket's real extent (10s ≈ col 40).
        assert!(bar[44..].chars().all(|c| c == '.'), "tail idle: {bar:?}");
        // Long names truncate to the gutter; every row stays aligned.
        for line in text.lines().skip(1) {
            assert_eq!(line.find('|'), Some(LABEL + 1), "aligned: {line:?}");
        }
    }
}
