//! Per-tenant SLO tracking: multi-window burn rates over the streaming
//! histograms.
//!
//! An SLO here is "fraction of `op` operations under `threshold` must be
//! at least `objective`" (e.g. 99% of reads under 10 ms). Following the
//! multi-window burn-rate practice, compliance is evaluated over two
//! horizons of the [`crate::metrics::MetricRegistry`]'s sliding windows:
//! a *long* burn over every retained window (is the error budget being
//! consumed at all?) and a *short* burn over the most recent few windows
//! (is it being consumed *right now*?). A burn rate of 1.0 spends exactly
//! the budget; paging only when **both** horizons burn hot suppresses
//! both stale alerts (long-only) and blips (short-only).
//!
//! Everything reads the registry's deterministic histograms —
//! [`simkit::stats::LatencyHistogram::count_over`] gives the breach count
//! at bucket resolution — so reports are byte-reproducible and CI
//! byte-diff gates them.

use crate::metrics::MetricRegistry;
use simkit::{as_millis, SimTime};
use std::fmt::Write as _;

/// One target: `objective` of `op` operations complete within
/// `threshold`.
#[derive(Clone, Debug)]
pub struct SloPolicy {
    pub op: String,
    pub threshold: SimTime,
    /// Target success fraction in `(0, 1)`, e.g. `0.99`.
    pub objective: f64,
}

impl SloPolicy {
    pub fn new(op: impl Into<String>, threshold: SimTime, objective: f64) -> SloPolicy {
        let objective_ok = (0.0..1.0).contains(&objective) && objective > 0.0;
        assert!(objective_ok, "objective must be in (0, 1)");
        SloPolicy {
            op: op.into(),
            threshold,
            objective,
        }
    }
}

/// Both-horizon burn verdict. Thresholds follow the common 14.4×/6×
/// alerting ladder scaled to this harness's short runs: [`SloStatus::Page`]
/// when both horizons burn ≥ 10× the budget rate, [`SloStatus::Warn`]
/// when both burn ≥ 2×.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloStatus {
    Ok,
    Warn,
    Page,
}

const WARN_BURN: f64 = 2.0;
const PAGE_BURN: f64 = 10.0;

/// One `(tenant, policy)` evaluation.
#[derive(Clone, Debug)]
pub struct SloEval {
    /// `None` aggregates every tenant (the whole-engine row).
    pub tenant: Option<u32>,
    pub op: String,
    pub threshold: SimTime,
    pub objective: f64,
    /// Operations / breaches over the long horizon.
    pub ops: u64,
    pub breaches: u64,
    pub burn_long: f64,
    pub burn_short: f64,
    pub status: SloStatus,
}

fn burn(breaches: u64, ops: u64, objective: f64) -> f64 {
    if ops == 0 {
        return 0.0;
    }
    (breaches as f64 / ops as f64) / (1.0 - objective)
}

fn status(burn_short: f64, burn_long: f64) -> SloStatus {
    if burn_short >= PAGE_BURN && burn_long >= PAGE_BURN {
        SloStatus::Page
    } else if burn_short >= WARN_BURN && burn_long >= WARN_BURN {
        SloStatus::Warn
    } else {
        SloStatus::Ok
    }
}

/// Evaluate `policies` against `engine`'s streaming histograms: one row
/// per seen tenant per policy (plus an all-tenants row when the run is
/// multi-tenant), each with long-horizon burn over all retained windows
/// and short-horizon burn over the last `short_windows`.
pub fn evaluate(
    reg: &MetricRegistry,
    engine: &str,
    policies: &[SloPolicy],
    short_windows: u64,
) -> Vec<SloEval> {
    assert!(short_windows > 0);
    let mut out = Vec::new();
    for p in policies {
        // The evaluation clock: the newest window any key of this op saw.
        let hi = reg
            .latency_keys()
            .filter(|k| k.engine == engine && k.op == p.op)
            .filter_map(|k| reg.latency(k).map(|s| s.hi()))
            .max();
        let Some(hi) = hi else {
            continue; // no data for this op
        };
        let short_lo = hi.saturating_sub(short_windows - 1);
        let tenants = reg.tenants(engine, &p.op);
        let mut cells: Vec<Option<u32>> = tenants.iter().map(|t| Some(*t)).collect();
        if cells.len() != 1 {
            // Aggregate row: every tenant (or the only data there is, when
            // the run never tagged tenants).
            cells.push(None);
        }
        for tenant in cells {
            let (mut ops, mut breaches) = (0u64, 0u64);
            let (mut ops_s, mut breaches_s) = (0u64, 0u64);
            for w in 0..=hi {
                let h = match tenant {
                    Some(t) => reg.tenant_window(engine, &p.op, Some(t), w),
                    None => reg.merged_window(engine, &p.op, w),
                };
                let b = h.count_over(p.threshold);
                ops += h.count();
                breaches += b;
                if w >= short_lo {
                    ops_s += h.count();
                    breaches_s += b;
                }
            }
            let burn_long = burn(breaches, ops, p.objective);
            let burn_short = burn(breaches_s, ops_s, p.objective);
            out.push(SloEval {
                tenant,
                op: p.op.clone(),
                threshold: p.threshold,
                objective: p.objective,
                ops,
                breaches,
                burn_long,
                burn_short,
                status: status(burn_short, burn_long),
            });
        }
    }
    out
}

/// Render evaluations as a fixed-width table (byte-diff-gated artifact).
pub fn render(title: &str, evals: &[SloEval]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "SLO burn rates — {title}");
    let _ = writeln!(
        out,
        "{:<10} {:<22} {:>10} {:>10} {:>11} {:>11}  status",
        "tenant", "slo", "ops", "breaches", "burn(long)", "burn(short)"
    );
    for e in evals {
        let tenant = match e.tenant {
            Some(t) => format!("tenant {t}"),
            None => "all".to_string(),
        };
        let slo = format!(
            "{} p{:.0} < {:.0}ms",
            e.op,
            e.objective * 100.0,
            as_millis(e.threshold)
        );
        let _ = writeln!(
            out,
            "{tenant:<10} {slo:<22} {:>10} {:>10} {:>11.2} {:>11.2}  {}",
            e.ops,
            e.breaches,
            e.burn_long,
            e.burn_short,
            match e.status {
                SloStatus::Ok => "ok",
                SloStatus::Warn => "WARN",
                SloStatus::Page => "PAGE",
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKey;
    use simkit::{millis, secs};

    fn reg_with(tenant_lat: &[(u32, f64)]) -> MetricRegistry {
        let mut reg = MetricRegistry::new(0, secs(1.0), 8);
        for (i, (tenant, lat_ms)) in tenant_lat.iter().enumerate() {
            // Spread samples over 4 windows.
            let at = secs(0.5) + secs(1.0) * (i as u64 % 4);
            reg.observe(
                MetricKey::new("sqlcs", "read", Some(0), Some(*tenant)),
                at,
                millis(*lat_ms),
            );
        }
        reg
    }

    #[test]
    fn healthy_tenant_is_ok_hot_tenant_pages() {
        // Tenant 0: all fast. Tenant 1: every op breaches a 99% objective
        // → burn 100×, both horizons.
        let samples: Vec<(u32, f64)> = (0..40)
            .map(|i| if i % 2 == 0 { (0, 1.0) } else { (1, 50.0) })
            .collect();
        let reg = reg_with(&samples);
        let evals = evaluate(
            &reg,
            "sqlcs",
            &[SloPolicy::new("read", millis(10.0), 0.99)],
            2,
        );
        let t0 = evals.iter().find(|e| e.tenant == Some(0)).expect("t0");
        let t1 = evals.iter().find(|e| e.tenant == Some(1)).expect("t1");
        let all = evals.iter().find(|e| e.tenant.is_none()).expect("all");
        assert_eq!(t0.status, SloStatus::Ok);
        assert_eq!(t1.status, SloStatus::Page);
        assert_eq!(t1.breaches, t1.ops);
        assert_eq!(all.ops, t0.ops + t1.ops);
    }

    #[test]
    fn ops_without_data_are_skipped_and_render_is_deterministic() {
        let reg = reg_with(&[(0, 1.0)]);
        let evals = evaluate(
            &reg,
            "sqlcs",
            &[
                SloPolicy::new("read", millis(10.0), 0.99),
                SloPolicy::new("scan", millis(10.0), 0.99),
            ],
            2,
        );
        assert!(evals.iter().all(|e| e.op == "read"));
        let a = render("t", &evals);
        assert_eq!(a, render("t", &evals));
        assert!(a.contains("read p99 < 10ms"));
    }
}
