//! Structural validation of Chrome Trace Event JSON exports.
//!
//! The exporters in this crate only ever emit well-formed traces, but the
//! CI gate re-checks the bytes on disk (`validate_trace` bin) so a
//! regression in an exporter — or a hand-edited fixture — fails loudly
//! instead of rendering garbage in Perfetto. Beyond "parses and has the
//! right fields", two *shape* rules are enforced per `(pid, tid)` track:
//!
//! - **Duration pairs balance**: every `ph:"B"` has a matching `ph:"E"`,
//!   matched LIFO by name (Chrome's own semantics — an `E` closes the most
//!   recent open `B`), closing no earlier than it opened, with nothing
//!   left open at end of trace.
//! - **Complete spans nest**: `ph:"X"` events on one thread lane must be
//!   properly nested — a span overlapping another must lie fully inside
//!   it. A child extending past its parent means the exporter put
//!   concurrent work on one lane, which trace viewers silently render as
//!   a misleading stack.

use crate::json::{parse, Json};

/// What a valid trace contained, for the caller's policy checks and logs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    pub events: usize,
    /// Process names from `process_name` metadata, in document order.
    pub procs: Vec<String>,
    /// Complete (`ph:"X"`) span count.
    pub spans: usize,
    /// Matched `B`/`E` pair count.
    pub pairs: usize,
    /// Counter (`ph:"C"`) sample count.
    pub counters: usize,
}

/// Span endpoints come from the simulator's integer-nanosecond clock
/// rendered in microseconds, so a *real* overshoot is at least one clock
/// tick = 1e-3 µs, while f64 noise in `ts + dur` at trace magnitudes is
/// a few 1e-6 µs. The epsilon sits between the two: rounding passes,
/// any genuine tick-sized violation is flagged.
const EPS: f64 = 5e-4;

fn f(ev: &Json, key: &str) -> Result<f64, String> {
    ev.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event missing numeric {key:?}: {ev:?}"))
}

fn lane(ev: &Json) -> (i64, i64) {
    let id = |key| ev.get(key).and_then(Json::as_f64).map_or(0, |v| v as i64);
    (id("pid"), id("tid"))
}

/// Validate trace text end to end: JSON parse, then [`validate_doc`].
pub fn validate_text(text: &str) -> Result<TraceSummary, String> {
    let doc = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    validate_doc(&doc)
}

/// Validate a parsed trace document. See the module docs for the rules.
pub fn validate_doc(doc: &Json) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents array")?;
    if events.is_empty() {
        return Err("empty trace".to_string());
    }
    let mut sum = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    // Per-(pid,tid) open B spans (name, ts) and X spans (ts, end, name).
    type Lane = (i64, i64);
    type OpenStack = Vec<(String, f64)>;
    type XSpans = Vec<(f64, f64, String)>;
    let mut open: Vec<(Lane, OpenStack)> = Vec::new();
    let mut xspans: Vec<(Lane, XSpans)> = Vec::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event missing ph: {ev:?}"))?;
        let name = || {
            ev.get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{ph} event missing name: {ev:?}"))
        };
        match ph {
            "M" => {
                if ev.get("name").and_then(Json::as_str) == Some("process_name") {
                    let p = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .ok_or("process_name metadata without args.name")?;
                    sum.procs.push(p.to_string());
                }
            }
            "X" => {
                sum.spans += 1;
                let (ts, dur) = (f(ev, "ts")?, f(ev, "dur")?);
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("negative span time: ts={ts} dur={dur}"));
                }
                let n = name()?;
                let key = lane(ev);
                match xspans.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => v.push((ts, ts + dur, n)),
                    None => xspans.push((key, vec![(ts, ts + dur, n)])),
                }
            }
            "B" | "E" => {
                let ts = f(ev, "ts")?;
                let key = lane(ev);
                let stack = match open.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => v,
                    None => {
                        open.push((key, Vec::new()));
                        &mut open.last_mut().expect("just pushed").1
                    }
                };
                if ph == "B" {
                    stack.push((name()?, ts));
                } else {
                    let n = name()?;
                    let Some((top, opened)) = stack.pop() else {
                        return Err(format!("E {n:?} at ts={ts} with no open B on {key:?}"));
                    };
                    if top != n {
                        return Err(format!(
                            "E {n:?} closes B {top:?} on {key:?} — pairs must nest LIFO"
                        ));
                    }
                    if ts + EPS < opened {
                        return Err(format!("span {n:?} closes at {ts} before opening {opened}"));
                    }
                    sum.pairs += 1;
                }
            }
            "C" => sum.counters += 1,
            other => return Err(format!("unexpected event phase {other:?}")),
        }
    }
    for (key, stack) in &open {
        if let Some((n, ts)) = stack.last() {
            return Err(format!(
                "unbalanced B/E on {key:?}: {n:?} opened at ts={ts} never closes ({} open)",
                stack.len()
            ));
        }
    }
    // X nesting per lane: sweep in start order (longest first at ties);
    // each span must close no later than the still-open span it sits in.
    for (key, spans) in &mut xspans {
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.2.cmp(&b.2))
        });
        let mut stack: Vec<&(f64, f64, String)> = Vec::new();
        for s in spans.iter() {
            while stack.last().is_some_and(|t| t.1 <= s.0 + EPS) {
                stack.pop();
            }
            if let Some(parent) = stack.last() {
                if s.1 > parent.1 + EPS {
                    return Err(format!(
                        "span {:?} [{}, {}] extends past its parent {:?} [{}, {}] on {key:?}",
                        s.2, s.0, s.1, parent.2, parent.0, parent.1
                    ));
                }
            }
            stack.push(s);
        }
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(events: &[&str]) -> String {
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    #[test]
    fn accepts_nested_x_and_balanced_be() {
        let t = doc(&[
            r#"{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"pdw"}}"#,
            r#"{"ph":"X","pid":1,"tid":1,"name":"outer","ts":0,"dur":100}"#,
            r#"{"ph":"X","pid":1,"tid":1,"name":"inner","ts":10,"dur":50}"#,
            r#"{"ph":"X","pid":1,"tid":1,"name":"later","ts":70,"dur":30}"#,
            r#"{"ph":"B","pid":1,"tid":2,"name":"a","ts":0}"#,
            r#"{"ph":"B","pid":1,"tid":2,"name":"b","ts":5}"#,
            r#"{"ph":"E","pid":1,"tid":2,"name":"b","ts":8}"#,
            r#"{"ph":"E","pid":1,"tid":2,"name":"a","ts":9}"#,
            r#"{"ph":"C","pid":1,"name":"depth","ts":0,"args":{"depth":2}}"#,
        ]);
        let s = validate_text(&t).expect("valid");
        assert_eq!(s.procs, vec!["pdw"]);
        assert_eq!((s.spans, s.pairs, s.counters), (3, 2, 1));
    }

    #[test]
    fn rejects_unbalanced_and_interleaved_be() {
        let dangling = doc(&[r#"{"ph":"B","pid":1,"tid":1,"name":"a","ts":0}"#]);
        assert!(validate_text(&dangling).unwrap_err().contains("unbalanced"));
        let stray = doc(&[r#"{"ph":"E","pid":1,"tid":1,"name":"a","ts":0}"#]);
        assert!(validate_text(&stray).unwrap_err().contains("no open B"));
        let crossed = doc(&[
            r#"{"ph":"B","pid":1,"tid":1,"name":"a","ts":0}"#,
            r#"{"ph":"B","pid":1,"tid":1,"name":"b","ts":1}"#,
            r#"{"ph":"E","pid":1,"tid":1,"name":"a","ts":2}"#,
            r#"{"ph":"E","pid":1,"tid":1,"name":"b","ts":3}"#,
        ]);
        assert!(validate_text(&crossed).unwrap_err().contains("LIFO"));
    }

    #[test]
    fn rejects_child_extending_past_parent_but_allows_other_lanes() {
        let bad = doc(&[
            r#"{"ph":"X","pid":1,"tid":1,"name":"parent","ts":0,"dur":100}"#,
            r#"{"ph":"X","pid":1,"tid":1,"name":"child","ts":50,"dur":100}"#,
        ]);
        assert!(validate_text(&bad).unwrap_err().contains("extends past"));
        // The same overlap on different lanes is legitimate concurrency.
        let ok = doc(&[
            r#"{"ph":"X","pid":1,"tid":1,"name":"parent","ts":0,"dur":100}"#,
            r#"{"ph":"X","pid":1,"tid":2,"name":"child","ts":50,"dur":100}"#,
        ]);
        assert!(validate_text(&ok).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(validate_text("{}").is_err());
        assert!(validate_text(r#"{"traceEvents":[]}"#).is_err());
        let bad_ph = doc(&[r#"{"ph":"Z","pid":1,"name":"x","ts":0}"#]);
        assert!(validate_text(&bad_ph).unwrap_err().contains("phase"));
        let neg = doc(&[r#"{"ph":"X","pid":1,"tid":1,"name":"x","ts":-1,"dur":5}"#]);
        assert!(validate_text(&neg).unwrap_err().contains("negative"));
    }
}
