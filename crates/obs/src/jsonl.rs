//! Stable JSONL metrics export: one self-describing JSON object per line,
//! suitable for `grep`/`jq`-style downstream processing and for
//! byte-identity assertions in the determinism tests.
//!
//! Record types (the `type` field):
//!
//! * `meta` — one per probe: bucket width, run end, task retries.
//! * `span` — one per closed phase, with exact nanosecond bounds.
//! * `resource` — one per (resource, bucket) with activity: time-weighted
//!   busy fraction and mean queue depth.
//! * `tasks` — one per task-concurrency transition.

use crate::json::{escape, num};
use crate::timeline::TimelineProbe;
use std::fmt::Write as _;

/// Render one probe's timeline as JSONL. `proc` labels every line so
/// multiple probes can share a file.
pub fn jsonl(proc_name: &str, probe: &TimelineProbe) -> String {
    let mut out = String::new();
    let p = escape(proc_name);
    let width = probe.bucket_width();
    let _ = writeln!(
        out,
        r#"{{"type":"meta","proc":{p},"bucket_ns":{width},"end_ns":{},"retries":{}}}"#,
        probe.end(),
        probe.retries()
    );
    for s in probe.spans() {
        let node = match s.node {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            r#"{{"type":"span","proc":{p},"name":{},"node":{node},"start_ns":{},"end_ns":{}}}"#,
            escape(&s.name),
            s.start,
            s.end
        );
    }
    for res in probe.resources() {
        if !res.active() {
            continue;
        }
        let name = escape(&res.name);
        for (b, bucket) in res.buckets().iter().enumerate() {
            if bucket.busy_ns == 0 && bucket.depth_ns == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                r#"{{"type":"resource","proc":{p},"name":{name},"servers":{},"bucket":{b},"start_ns":{},"busy":{},"mean_depth":{}}}"#,
                res.servers,
                b as u64 * width,
                num(res.busy_fraction(b, width), 4),
                num(res.mean_depth(b, width), 3)
            );
        }
    }
    for &(at, running) in probe.task_samples() {
        let _ = writeln!(
            out,
            r#"{{"type":"tasks","proc":{p},"at_ns":{at},"running":{running}}}"#
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use simkit::secs;

    #[test]
    fn every_line_is_valid_json() {
        let mut probe = TimelineProbe::new(secs(1.0));
        use simkit::probe::{Probe, ProbeEvent};
        use simkit::resource::ResourceId;
        // Drive the probe directly through its trait to fabricate a tiny
        // timeline. ResourceId construction goes through a real Sim.
        let mut sim: simkit::Sim<()> = simkit::Sim::new();
        let r = sim.add_resource("disk", 1);
        probe.on_event(&ProbeEvent::ResourceRegistered {
            res: r,
            name: "disk",
            servers: 1,
        });
        probe.on_event(&ProbeEvent::SpanOpened {
            at: 0,
            name: "phase \"quoted\"",
            node: None,
            id: 0,
        });
        probe.on_event(&ProbeEvent::Enqueued {
            at: 0,
            res: r,
            service: secs(1.0),
            waiting: 1,
            req: 0,
            ctx: Some(0),
            client: None,
        });
        probe.on_event(&ProbeEvent::ServiceStarted {
            at: 0,
            res: r,
            service: secs(1.0),
            wait: 0,
            waiting: 0,
            req: 0,
            ctx: Some(0),
            client: None,
        });
        probe.on_event(&ProbeEvent::ServiceCompleted {
            at: secs(1.0),
            res: r,
            waiting: 0,
            req: 0,
            ctx: Some(0),
            client: None,
        });
        probe.on_event(&ProbeEvent::SpanClosed {
            at: secs(1.0),
            name: "phase \"quoted\"",
            node: None,
            id: 0,
        });
        let _ = ResourceId::index(r);
        let text = jsonl("hive", &probe);
        assert!(text.lines().count() >= 3);
        for line in text.lines() {
            let v = parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            assert!(v.get("type").is_some());
        }
        // Same probe, same bytes.
        assert_eq!(text, jsonl("hive", &probe));
    }
}
