//! Minimal JSON support: escape/format helpers for the exporters, and a
//! small recursive-descent parser used to *validate* exported traces (the
//! workspace vendors no serde, so both directions are hand-rolled).
//!
//! The parser is for tooling and tests — it accepts standard JSON
//! (RFC 8259) minus exotica (no `\u` surrogate-pair validation beyond
//! pass-through) and is not performance-tuned.

use std::fmt::Write as _;

/// Escape `s` into a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` for JSON output: fixed precision (deterministic and
/// locale-free), trailing zeros trimmed so steady values compare equal.
pub fn num(v: f64, decimals: usize) -> String {
    let mut s = format!("{v:.decimals$}");
    if s.contains('.') {
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
    }
    if s == "-0" {
        s = "0".to_string();
    }
    s
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order preserved (and deterministic, matching the input bytes).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kvs = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(kvs));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            kvs.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(kvs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.i,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut vals = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(vals));
        }
        loop {
            self.ws();
            vals.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(vals));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.i,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).expect("input was a &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_documents() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\"y", "d": null}, "e": true}"#;
        let v = parse(doc).expect("parse");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_str()),
            Some("x\"y")
        );
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let back = parse(&escape("tab\tnew\nquote\"")).expect("parse");
        assert_eq!(back.as_str(), Some("tab\tnew\nquote\""));
    }

    #[test]
    fn num_is_trimmed_and_deterministic() {
        assert_eq!(num(1.5, 3), "1.5");
        assert_eq!(num(2.0, 3), "2");
        assert_eq!(num(0.12349, 3), "0.123");
        assert_eq!(num(-0.0001, 3), "0");
    }
}
