//! # obs — passive observability over the DES substrate
//!
//! Everything the engines report today is an *aggregate* (total busy time,
//! final percentiles); this crate adds the *time axis* and, on top of it,
//! the *analysis*. It builds on the [`simkit::probe`] bus in three layers:
//!
//! 1. **Passive stream folds** — attach a [`TimelineProbe`] to any
//!    `Sim`/`ClusterExec` and it folds the deterministic event stream into
//!    per-resource busy-fraction/queue-depth timelines, exact phase spans,
//!    and a task-concurrency track, exported as Chrome Trace Event JSON
//!    ([`chrome_trace`], loadable in Perfetto), stable JSONL ([`jsonl()`]),
//!    or an [`ascii_timeline`].
//! 2. **Streaming metrics** — [`metrics::MetricRegistry`] keeps counters,
//!    gauges, and sliding-window latency histograms keyed by
//!    `(engine, op, shard, tenant)`, updated incrementally as events
//!    arrive; its windows are bit-identical to the post-hoc
//!    [`WindowedLatencies`] fold over the same stream.
//! 3. **Query-time analysis** — [`critpath::CritPathProbe`] reconstructs
//!    each span's blocking structure from the kernel's span↔resource
//!    linkage and partitions elapsed time into per-kind service, queue
//!    wait, and stall; [`slo`] evaluates per-tenant SLO targets as
//!    multi-window burn rates over the streaming histograms.
//!
//! **Passivity is the design invariant**: probes receive borrowed event
//! data and have no handle back into the simulation, so attaching one
//! changes no timing cell and no result byte (`tests/observability.rs`,
//! a CI artifact diff, and the `probe-passivity` lint enforce this).

#![forbid(unsafe_code)]

pub mod ascii;
pub mod chrome;
pub mod critpath;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod serving;
pub mod slo;
pub mod timeline;
pub mod validate;

pub use ascii::ascii_timeline;
pub use chrome::chrome_trace;
pub use critpath::{CritPathProbe, CritPathReport, Verdict};
pub use jsonl::jsonl;
pub use metrics::{MetricKey, MetricRegistry};
pub use serving::WindowedLatencies;
pub use slo::{SloPolicy, SloStatus};
pub use timeline::TimelineProbe;

use simkit::probe::{Probe, ProbeEvent};
use std::cell::RefCell;
use std::rc::Rc;

/// Fan-out probe: forwards every event to each attached probe in order,
/// so one run can feed a [`TimelineProbe`] and a [`CritPathProbe`] (or any
/// other combination) simultaneously. Passive like everything else here —
/// it only relays borrowed event data.
#[derive(Default)]
pub struct Tee {
    sinks: Vec<Rc<RefCell<dyn Probe>>>,
}

impl Tee {
    pub fn new() -> Tee {
        Tee::default()
    }

    pub fn add(&mut self, sink: Rc<RefCell<dyn Probe>>) {
        self.sinks.push(sink);
    }

    /// Convenience constructor from a list of sinks.
    pub fn of(sinks: Vec<Rc<RefCell<dyn Probe>>>) -> Tee {
        Tee { sinks }
    }
}

impl Probe for Tee {
    fn on_event(&mut self, ev: &ProbeEvent<'_>) {
        for s in &self.sinks {
            s.borrow_mut().on_event(ev);
        }
    }
}
