//! # obs — passive observability over the DES substrate
//!
//! Everything the engines report today is an *aggregate* (total busy time,
//! final percentiles); this crate adds the *time axis*. It builds on the
//! [`simkit::probe`] bus: attach a [`TimelineProbe`] to any
//! `Sim`/`ClusterExec` and it folds the deterministic event stream into
//!
//! * per-resource **busy-fraction and queue-depth timelines** (fixed
//!   sim-time buckets, width adapting to run length),
//! * exact **phase spans** and a **task-concurrency** track,
//!
//! which export as Chrome Trace Event JSON ([`chrome_trace`], loadable in
//! Perfetto) or stable JSONL ([`jsonl()`]), or render as an [`ascii_timeline`]
//! for terminals and committed artifacts. For the serving-side benchmarks,
//! [`WindowedLatencies`] keeps per-(operation, shard, window) histograms so
//! p50/p95/p99 can be read over time and across shards.
//!
//! **Passivity is the design invariant**: probes receive borrowed event
//! data and have no handle back into the simulation, so attaching one
//! changes no timing cell and no result byte (`tests/observability.rs`
//! and a CI artifact diff enforce this).

#![forbid(unsafe_code)]

pub mod ascii;
pub mod chrome;
pub mod json;
pub mod jsonl;
pub mod serving;
pub mod timeline;

pub use ascii::ascii_timeline;
pub use chrome::chrome_trace;
pub use jsonl::jsonl;
pub use serving::WindowedLatencies;
pub use timeline::TimelineProbe;
