//! Deterministic streaming metric registry.
//!
//! PR 4's observability plane records everything and folds it *after* the
//! run ([`crate::WindowedLatencies`], [`crate::TimelineProbe`]). This
//! module is the live half: counters, gauges, and sliding-window latency
//! histograms keyed by `(engine, op, shard, tenant)` that are updated
//! **incrementally** as samples arrive, so a sensor inside a running
//! experiment (the `pdw::FeedbackCosts` loop, an elasticity balancer, an
//! SLO evaluator) can read current values mid-flight instead of waiting
//! for the end-of-run fold.
//!
//! Everything here is plain deterministic bookkeeping: `BTreeMap` keying,
//! integer window arithmetic, [`LatencyHistogram`] bucketing. Feeding the
//! same sample stream always produces the same registry, and the windows
//! are **bit-identical** to the post-hoc [`crate::WindowedLatencies`] fold
//! over the same stream (`crates/obs/tests/streaming.rs` pins this as a
//! property; [`MetricRegistry::to_windowed`] materializes the fold view).

use simkit::stats::LatencyHistogram;
use simkit::SimTime;
use std::collections::BTreeMap;

/// Metric identity: which engine, which operation, which shard (if the
/// store is sharded), which tenant (if the workload is multi-tenant).
/// `None` dimensions collapse — a single-tenant run keys everything under
/// `tenant: None` and reads identically to before tenancy existed.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub engine: String,
    pub op: String,
    pub shard: Option<usize>,
    pub tenant: Option<u32>,
}

impl MetricKey {
    pub fn new(
        engine: impl Into<String>,
        op: impl Into<String>,
        shard: Option<usize>,
        tenant: Option<u32>,
    ) -> MetricKey {
        MetricKey {
            engine: engine.into(),
            op: op.into(),
            shard,
            tenant,
        }
    }
}

/// A ring of per-window [`LatencyHistogram`]s over fixed windows of
/// `width` ns starting at `t0`, retaining the most recent `cap` windows.
/// Window `w` covers `[t0 + w*width, t0 + (w+1)*width)` — exactly the
/// arithmetic [`crate::WindowedLatencies::record`] uses, which is what
/// makes the bit-identity proof possible.
///
/// Samples must arrive in non-decreasing `at` order (probe streams and op
/// observers are emitted from the deterministic event loop, so they do).
#[derive(Clone, Debug)]
pub struct SlidingWindows {
    t0: SimTime,
    width: SimTime,
    /// Ring slots; slot = window index % cap.
    ring: Vec<LatencyHistogram>,
    /// Highest absolute window index seen so far.
    hi: u64,
    /// Whether any sample has arrived (distinguishes "window 0 live" from
    /// "nothing yet").
    any: bool,
}

impl SlidingWindows {
    pub fn new(t0: SimTime, width: SimTime, cap: usize) -> SlidingWindows {
        assert!(width > 0 && cap > 0);
        SlidingWindows {
            t0,
            width,
            ring: (0..cap).map(|_| LatencyHistogram::new()).collect(),
            hi: 0,
            any: false,
        }
    }

    pub fn width(&self) -> SimTime {
        self.width
    }

    pub fn start(&self) -> SimTime {
        self.t0
    }

    /// Highest window index with data so far (0 if nothing recorded).
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Record one sample. Samples before `t0` are dropped (same rule as
    /// the fold); windows older than the retained `cap` are gone.
    pub fn record(&mut self, at: SimTime, v: SimTime) {
        if at < self.t0 {
            return;
        }
        let w = (at - self.t0) / self.width;
        if w > self.hi {
            // Advance the ring, clearing every slot the clock skipped.
            let first_new = self.hi + 1;
            let from = if w - first_new >= self.ring.len() as u64 {
                w + 1 - self.ring.len() as u64
            } else {
                first_new
            };
            for i in from..=w {
                let slot = (i % self.ring.len() as u64) as usize;
                self.ring[slot].clear();
            }
            self.hi = w;
        }
        self.any = true;
        let slot = (w % self.ring.len() as u64) as usize;
        self.ring[slot].record(v);
    }

    /// The histogram for absolute window `w`, if it is still retained
    /// (within `cap` of the most recent window) and not in the future.
    pub fn window(&self, w: u64) -> Option<&LatencyHistogram> {
        if !self.any || w > self.hi || w + self.ring.len() as u64 <= self.hi {
            return None;
        }
        Some(&self.ring[(w % self.ring.len() as u64) as usize])
    }

    /// Merge of the retained windows in `lo..=hi` (missing ones skipped).
    pub fn merged(&self, lo: u64, hi: u64) -> LatencyHistogram {
        let mut m = LatencyHistogram::new();
        for w in lo..=hi {
            if let Some(h) = self.window(w) {
                m.merge(h);
            }
        }
        m
    }
}

/// The streaming registry: counters, gauges, and sliding-window latency
/// histograms, all keyed by [`MetricKey`]. One registry per run; feed it
/// from an op observer or a probe and read it at any point.
pub struct MetricRegistry {
    t0: SimTime,
    width: SimTime,
    cap: usize,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    latencies: BTreeMap<MetricKey, SlidingWindows>,
}

impl MetricRegistry {
    /// Latency windows of `width` ns starting at `t0`, retaining `cap`
    /// windows per key.
    pub fn new(t0: SimTime, width: SimTime, cap: usize) -> MetricRegistry {
        assert!(width > 0 && cap > 0);
        MetricRegistry {
            t0,
            width,
            cap,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            latencies: BTreeMap::new(),
        }
    }

    pub fn window_width(&self) -> SimTime {
        self.width
    }

    pub fn start(&self) -> SimTime {
        self.t0
    }

    /// Increment a counter by `n`.
    pub fn add(&mut self, key: MetricKey, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, key: MetricKey) {
        self.add(key, 1);
    }

    /// Set a gauge to its latest value.
    pub fn set_gauge(&mut self, key: MetricKey, v: f64) {
        self.gauges.insert(key, v);
    }

    /// Record one latency sample (and bump the key's op counter).
    pub fn observe(&mut self, key: MetricKey, at: SimTime, latency: SimTime) {
        self.add(key.clone(), 1);
        let (t0, width, cap) = (self.t0, self.width, self.cap);
        self.latencies
            .entry(key)
            .or_insert_with(|| SlidingWindows::new(t0, width, cap))
            .record(at, latency);
    }

    pub fn counter(&self, key: &MetricKey) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    pub fn gauge(&self, key: &MetricKey) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    pub fn latency(&self, key: &MetricKey) -> Option<&SlidingWindows> {
        self.latencies.get(key)
    }

    /// Iterate latency keys in sorted (deterministic) order.
    pub fn latency_keys(&self) -> impl Iterator<Item = &MetricKey> {
        self.latencies.keys()
    }

    /// Distinct `(engine, op)` pairs with latency data, sorted.
    pub fn ops(&self) -> Vec<(&str, &str)> {
        let mut v: Vec<(&str, &str)> = self
            .latencies
            .keys()
            .map(|k| (k.engine.as_str(), k.op.as_str()))
            .collect();
        v.dedup();
        v
    }

    /// Tenants seen for `(engine, op)`, sorted; `None` excluded.
    pub fn tenants(&self, engine: &str, op: &str) -> Vec<u32> {
        let mut ts: Vec<u32> = self
            .latencies
            .keys()
            .filter(|k| k.engine == engine && k.op == op)
            .filter_map(|k| k.tenant)
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Merge window `w` across shards and tenants of `(engine, op)` —
    /// exact, because histogram merge is bucket-wise integer addition.
    pub fn merged_window(&self, engine: &str, op: &str, w: u64) -> LatencyHistogram {
        let mut m = LatencyHistogram::new();
        for (k, s) in &self.latencies {
            if k.engine == engine && k.op == op {
                if let Some(h) = s.window(w) {
                    m.merge(h);
                }
            }
        }
        m
    }

    /// Merge window `w` across shards of one `(engine, op, tenant)` cell.
    pub fn tenant_window(
        &self,
        engine: &str,
        op: &str,
        tenant: Option<u32>,
        w: u64,
    ) -> LatencyHistogram {
        let mut m = LatencyHistogram::new();
        for (k, s) in &self.latencies {
            if k.engine == engine && k.op == op && k.tenant == tenant {
                if let Some(h) = s.window(w) {
                    m.merge(h);
                }
            }
        }
        m
    }

    /// Materialize the classic post-hoc fold for `engine` over the first
    /// `n` windows: a [`crate::WindowedLatencies`] keyed by `(op, shard)`
    /// with tenants merged, bit-identical to having fed every sample to
    /// the fold directly (requires `cap >= n` so no window was evicted).
    pub fn to_windowed(&self, engine: &str, n: usize) -> crate::WindowedLatencies {
        assert!(
            n <= self.cap,
            "registry retains {} windows, fold wants {n}",
            self.cap
        );
        let mut wl = crate::WindowedLatencies::new(self.t0, self.width, n);
        for (k, s) in &self.latencies {
            if k.engine != engine {
                continue;
            }
            for w in 0..n as u64 {
                if let Some(h) = s.window(w) {
                    if h.count() > 0 {
                        wl.absorb(&k.op, k.shard, w as usize, h);
                    }
                }
            }
        }
        wl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{millis, secs};

    #[test]
    fn sliding_windows_match_fixed_window_arithmetic() {
        let mut sw = SlidingWindows::new(secs(4.0), secs(1.0), 8);
        sw.record(secs(3.9), millis(1.0)); // before t0: dropped
        sw.record(secs(4.0), millis(1.0)); // window 0
        sw.record(secs(5.5), millis(2.0)); // window 1
        sw.record(secs(6.999), millis(3.0)); // window 2
        assert_eq!(sw.window(0).map(|h| h.count()), Some(1));
        assert_eq!(sw.window(1).map(|h| h.count()), Some(1));
        assert_eq!(sw.window(2).map(|h| h.count()), Some(1));
        assert_eq!(sw.hi(), 2);
        assert_eq!(sw.merged(0, 2).count(), 3);
    }

    #[test]
    fn old_windows_evict_as_the_clock_advances() {
        let mut sw = SlidingWindows::new(0, secs(1.0), 2);
        sw.record(secs(0.5), millis(1.0)); // window 0
        sw.record(secs(1.5), millis(2.0)); // window 1
        assert!(sw.window(0).is_some());
        sw.record(secs(2.5), millis(3.0)); // window 2 evicts window 0
        assert!(sw.window(0).is_none());
        assert_eq!(sw.window(1).map(|h| h.count()), Some(1));
        assert_eq!(sw.window(2).map(|h| h.count()), Some(1));
        // A long quiet gap clears every skipped slot: window 9 is still
        // retained (within cap of the newest) but empty, older ones are gone.
        sw.record(secs(10.2), millis(4.0)); // window 10
        assert!(sw.window(2).is_none());
        assert_eq!(sw.window(9).map(|h| h.count()), Some(0));
        assert_eq!(sw.window(10).map(|h| h.count()), Some(1));
    }

    #[test]
    fn registry_counters_gauges_and_keys_are_deterministic() {
        let mut reg = MetricRegistry::new(0, secs(1.0), 4);
        let k = |t| MetricKey::new("sqlcs", "read", Some(0), Some(t));
        reg.inc(k(1));
        reg.add(k(0), 3);
        reg.set_gauge(MetricKey::new("sqlcs", "depth", None, None), 2.5);
        reg.observe(k(0), secs(0.5), millis(5.0));
        assert_eq!(reg.counter(&k(0)), 4); // 3 + the observe
        assert_eq!(reg.counter(&k(1)), 1);
        assert_eq!(
            reg.gauge(&MetricKey::new("sqlcs", "depth", None, None)),
            Some(2.5)
        );
        assert_eq!(reg.tenants("sqlcs", "read"), vec![0]);
        assert_eq!(reg.ops(), vec![("sqlcs", "read")]);
    }

    #[test]
    fn to_windowed_matches_direct_fold() {
        let mut reg = MetricRegistry::new(secs(1.0), secs(2.0), 4);
        let mut wl = crate::WindowedLatencies::new(secs(1.0), secs(2.0), 4);
        let stream = [
            ("read", Some(0), 2, secs(1.2), millis(3.0)),
            ("read", Some(1), 0, secs(2.8), millis(7.0)),
            ("update", Some(0), 1, secs(4.4), millis(9.0)),
            ("read", Some(0), 2, secs(6.0), millis(2.0)),
            ("update", Some(1), 3, secs(8.9), millis(1.0)),
        ];
        for (op, shard, tenant, at, lat) in stream {
            reg.observe(MetricKey::new("mongo", op, shard, Some(tenant)), at, lat);
            wl.record(op, shard, at, lat);
        }
        let derived = reg.to_windowed("mongo", 4);
        for op in ["read", "update"] {
            for w in 0..4 {
                assert_eq!(derived.merged(op, w), wl.merged(op, w), "{op} w{w}");
            }
        }
    }
}
