//! Windowed serving-side latency percentiles.
//!
//! The YCSB harness reports one aggregate p50/p95/p99 per run; this module
//! keeps a [`LatencyHistogram`] per *(operation, shard, window)* so latency
//! can be read **over time** and **across shards**: per-window percentiles
//! come from [`LatencyHistogram::merge`]-ing the shard histograms (exact —
//! bucketing is deterministic, see the S2 property test), and the min/max
//! per-shard p95 exposes skew a single merged number hides.

use simkit::stats::LatencyHistogram;
use simkit::{as_millis, SimTime};
use std::fmt::Write as _;

struct Series {
    label: String,
    shard: Option<usize>,
    windows: Vec<LatencyHistogram>,
}

/// Fixed-window latency collector for one measurement interval.
pub struct WindowedLatencies {
    t0: SimTime,
    window: SimTime,
    n: usize,
    /// Linear-scan keyed by `(label, shard)` — a handful of operations ×
    /// shards, and a `Vec` keeps iteration deterministic for export.
    series: Vec<Series>,
}

impl WindowedLatencies {
    /// Collect samples in `[t0, t0 + n*window)`, bucketed into `n` windows
    /// of `window` ns.
    pub fn new(t0: SimTime, window: SimTime, n: usize) -> WindowedLatencies {
        assert!(window > 0 && n > 0);
        WindowedLatencies {
            t0,
            window,
            n,
            series: Vec::new(),
        }
    }

    pub fn window(&self) -> SimTime {
        self.window
    }

    pub fn windows(&self) -> usize {
        self.n
    }

    pub fn start(&self) -> SimTime {
        self.t0
    }

    /// Record one completed operation. Samples outside the measurement
    /// interval are dropped (same rule as the aggregate YCSB measure).
    pub fn record(&mut self, label: &str, shard: Option<usize>, at: SimTime, latency: SimTime) {
        if at < self.t0 {
            return;
        }
        let w = ((at - self.t0) / self.window) as usize;
        if w >= self.n {
            return;
        }
        let n = self.n;
        let series = match self
            .series
            .iter_mut()
            .position(|s| s.label == label && s.shard == shard)
        {
            Some(i) => &mut self.series[i],
            None => {
                self.series.push(Series {
                    label: label.to_string(),
                    shard,
                    windows: (0..n).map(|_| LatencyHistogram::new()).collect(),
                });
                self.series.last_mut().expect("just pushed")
            }
        };
        series.windows[w].record(latency);
    }

    /// Merge a whole per-window histogram into `(label, shard, w)` — the
    /// bridge that lets a streaming [`crate::metrics::MetricRegistry`]
    /// materialize the classic fold view at end of run. Because bucketing
    /// and [`LatencyHistogram::merge`] are exact, absorbing the registry's
    /// windows gives bit-identical series to having called
    /// [`WindowedLatencies::record`] per sample.
    pub fn absorb(&mut self, label: &str, shard: Option<usize>, w: usize, h: &LatencyHistogram) {
        if w >= self.n {
            return;
        }
        let n = self.n;
        let series = match self
            .series
            .iter_mut()
            .position(|s| s.label == label && s.shard == shard)
        {
            Some(i) => &mut self.series[i],
            None => {
                self.series.push(Series {
                    label: label.to_string(),
                    shard,
                    windows: (0..n).map(|_| LatencyHistogram::new()).collect(),
                });
                self.series.last_mut().expect("just pushed")
            }
        };
        series.windows[w].merge(h);
    }

    /// Distinct operation labels, sorted (deterministic report order).
    pub fn labels(&self) -> Vec<&str> {
        let mut ls: Vec<&str> = self.series.iter().map(|s| s.label.as_str()).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Shards seen for `label`, sorted; `None` entries (unsharded stores)
    /// are excluded.
    pub fn shards(&self, label: &str) -> Vec<usize> {
        let mut ss: Vec<usize> = self
            .series
            .iter()
            .filter(|s| s.label == label)
            .filter_map(|s| s.shard)
            .collect();
        ss.sort_unstable();
        ss.dedup();
        ss
    }

    /// All shards of `label` merged for window `w`.
    pub fn merged(&self, label: &str, w: usize) -> LatencyHistogram {
        let mut m = LatencyHistogram::new();
        for s in self.series.iter().filter(|s| s.label == label) {
            m.merge(&s.windows[w]);
        }
        m
    }

    /// `(min, max)` of per-shard quantile `q` in window `w`, over shards
    /// with at least one sample. `None` if fewer than two shards have data.
    pub fn shard_spread(&self, label: &str, w: usize, q: f64) -> Option<(SimTime, SimTime)> {
        let mut lo = SimTime::MAX;
        let mut hi = 0;
        let mut n = 0;
        for s in self.series.iter().filter(|s| s.label == label) {
            if s.shard.is_none() || s.windows[w].count() == 0 {
                continue;
            }
            let v = s.windows[w].quantile(q);
            lo = lo.min(v);
            hi = hi.max(v);
            n += 1;
        }
        (n >= 2).then_some((lo, hi))
    }

    /// Render the windowed percentiles as a markdown table per operation.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let win_s = self.window as f64 / 1e9;
        let _ = writeln!(out, "### {title}");
        for label in self.labels() {
            let _ = writeln!(out, "\n`{label}` ({win_s:.1}s windows):\n");
            let sharded = !self.shards(label).is_empty();
            if sharded {
                let _ = writeln!(
                    out,
                    "| window | ops | p50 ms | p95 ms | p99 ms | shard p95 ms |"
                );
                let _ = writeln!(out, "|---|---|---|---|---|---|");
            } else {
                let _ = writeln!(out, "| window | ops | p50 ms | p95 ms | p99 ms |");
                let _ = writeln!(out, "|---|---|---|---|---|");
            }
            for w in 0..self.n {
                let m = self.merged(label, w);
                let t = w as f64 * win_s;
                let mut row = format!(
                    "| {}–{}s | {} | {:.2} | {:.2} | {:.2} |",
                    fmt_t(t),
                    fmt_t(t + win_s),
                    m.count(),
                    as_millis(m.quantile(0.50)),
                    as_millis(m.quantile(0.95)),
                    as_millis(m.quantile(0.99)),
                );
                if sharded {
                    match self.shard_spread(label, w, 0.95) {
                        Some((lo, hi)) => {
                            let _ = write!(row, " {:.2}–{:.2} |", as_millis(lo), as_millis(hi));
                        }
                        None => row.push_str(" – |"),
                    }
                }
                let _ = writeln!(out, "{row}");
            }
        }
        out
    }
}

/// Window-boundary seconds: whole numbers bare, fractions to one decimal.
fn fmt_t(t: f64) -> String {
    if (t - t.round()).abs() < 1e-9 {
        format!("{t:.0}")
    } else {
        format!("{t:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{millis, secs};

    #[test]
    fn windows_partition_the_measure_interval() {
        let mut wl = WindowedLatencies::new(secs(4.0), secs(1.0), 3);
        wl.record("read", Some(0), secs(3.9), millis(1.0)); // before t0: dropped
        wl.record("read", Some(0), secs(4.0), millis(1.0)); // window 0
        wl.record("read", Some(1), secs(5.5), millis(2.0)); // window 1
        wl.record("read", Some(0), secs(6.999), millis(3.0)); // window 2
        wl.record("read", Some(0), secs(7.0), millis(9.0)); // past end: dropped
        assert_eq!(wl.merged("read", 0).count(), 1);
        assert_eq!(wl.merged("read", 1).count(), 1);
        assert_eq!(wl.merged("read", 2).count(), 1);
        assert_eq!(wl.labels(), vec!["read"]);
        assert_eq!(wl.shards("read"), vec![0, 1]);
    }

    #[test]
    fn merged_percentiles_cover_all_shards() {
        let mut wl = WindowedLatencies::new(0, secs(1.0), 1);
        for shard in 0..4 {
            for i in 0..25 {
                wl.record("update", Some(shard), 0, millis(1.0 + i as f64));
            }
        }
        let m = wl.merged("update", 0);
        assert_eq!(m.count(), 100);
        let spread = wl.shard_spread("update", 0, 0.95).expect("4 shards");
        assert_eq!(spread.0, spread.1, "identical shards have zero spread");
    }

    #[test]
    fn render_is_deterministic_and_tabular() {
        let mut wl = WindowedLatencies::new(0, secs(1.0), 2);
        wl.record("read", None, 0, millis(2.0));
        wl.record("scan", None, secs(1.5), millis(40.0));
        let a = wl.render("ycsb-a");
        assert_eq!(a, wl.render("ycsb-a"));
        assert!(a.contains("`read`"));
        assert!(a.contains("| 0–1s | 1 |"));
    }
}
