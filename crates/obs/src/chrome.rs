//! Chrome Trace Event JSON export (the format Perfetto and `chrome://
//! tracing` load): one *process* per probe (engine), a "phases" thread
//! carrying exact span slices, a counter track per active resource
//! (busy fraction, mean queue depth), and a task-concurrency counter.
//!
//! Timestamps are microseconds (the format's unit); bucketed counters are
//! emitted delta-style — a sample only when the value changes — so steady
//! regions cost one event. Output is deterministic: processes, resources,
//! and buckets are iterated in index order and floats use fixed-precision
//! formatting.

use crate::json::{escape, num};
use crate::timeline::TimelineProbe;
use simkit::SimTime;

fn us(t: SimTime) -> String {
    num(t as f64 / 1e3, 3)
}

/// Render probes as one Chrome Trace Event JSON document. Each `(name,
/// probe)` pair becomes a process; pass one pair per engine to see e.g.
/// Hive and PDW side by side on a shared time axis.
pub fn chrome_trace(procs: &[(&str, &TimelineProbe)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (i, (name, probe)) in procs.iter().enumerate() {
        let pid = i + 1;
        events.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":0,"name":"process_name","args":{{"name":{}}}}}"#,
            escape(name)
        ));
        events.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":1,"name":"thread_name","args":{{"name":"phases"}}}}"#
        ));
        for span in probe.spans() {
            let args = match span.node {
                Some(n) => format!(r#","args":{{"node":{n}}}"#),
                None => String::new(),
            };
            events.push(format!(
                r#"{{"ph":"X","pid":{pid},"tid":1,"cat":"phase","name":{},"ts":{},"dur":{}{args}}}"#,
                escape(&span.name),
                us(span.start),
                us(span.end.saturating_sub(span.start)),
            ));
        }
        let mut last = None;
        for &(at, running) in probe.task_samples() {
            if last == Some(running) {
                continue;
            }
            last = Some(running);
            events.push(format!(
                r#"{{"ph":"C","pid":{pid},"name":"tasks running","ts":{},"args":{{"running":{running}}}}}"#,
                us(at)
            ));
        }
        let width = probe.bucket_width();
        for res in probe.resources() {
            if !res.active() {
                continue;
            }
            counter_track(
                &mut events,
                pid,
                &format!("{} busy", res.name),
                "busy",
                width,
                res.buckets().len(),
                |b| num(res.busy_fraction(b, width), 4),
            );
            if res.ever_queued() {
                counter_track(
                    &mut events,
                    pid,
                    &format!("{} queue", res.name),
                    "depth",
                    width,
                    res.buckets().len(),
                    |b| num(res.mean_depth(b, width), 3),
                );
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Emit one counter's samples, bucket by bucket, skipping repeats and
/// closing with a zero sample after the last bucket.
fn counter_track(
    events: &mut Vec<String>,
    pid: usize,
    track: &str,
    key: &str,
    width: SimTime,
    buckets: usize,
    value: impl Fn(usize) -> String,
) {
    let name = escape(track);
    let mut prev: Option<String> = None;
    for b in 0..buckets {
        let v = value(b);
        if prev.as_deref() == Some(v.as_str()) {
            continue;
        }
        events.push(format!(
            r#"{{"ph":"C","pid":{pid},"name":{name},"ts":{},"args":{{"{key}":{v}}}}}"#,
            us(b as SimTime * width)
        ));
        prev = Some(v);
    }
    if prev.as_deref().is_some_and(|v| v != "0") {
        events.push(format!(
            r#"{{"ph":"C","pid":{pid},"name":{name},"ts":{},"args":{{"{key}":0}}}}"#,
            us(buckets as SimTime * width)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use simkit::{secs, Sim};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn sample_probe() -> TimelineProbe {
        let mut sim: Sim<()> = Sim::new();
        let probe = Rc::new(RefCell::new(TimelineProbe::new(secs(1.0))));
        sim.set_probe(Some(probe.clone()));
        let disk = sim.add_resource("node0.disk0", 1);
        sim.emit_probe(simkit::ProbeEvent::SpanOpened {
            at: 0,
            name: "scan",
            node: Some(0),
        });
        for _ in 0..2 {
            sim.use_resource(disk, secs(1.0), |_, _| {});
        }
        let end = sim.run(&mut ());
        sim.emit_probe(simkit::ProbeEvent::SpanClosed {
            at: end,
            name: "scan",
            node: Some(0),
        });
        sim.set_probe(None);
        Rc::try_unwrap(probe).expect("sole owner").into_inner()
    }

    #[test]
    fn output_is_valid_json_with_expected_tracks() {
        let p = sample_probe();
        let doc = chrome_trace(&[("pdw", &p)]);
        let v = parse(&doc).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // The span slice is present with exact microsecond bounds.
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("one X event");
        assert_eq!(span.get("name").and_then(|n| n.as_str()), Some("scan"));
        assert_eq!(span.get("ts").and_then(|t| t.as_f64()), Some(0.0));
        assert_eq!(span.get("dur").and_then(|d| d.as_f64()), Some(2e6));
        // Busy and queue counter tracks exist for the disk.
        for track in ["node0.disk0 busy", "node0.disk0 queue"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(track)),
                "missing counter track {track}"
            );
        }
    }

    #[test]
    fn export_is_reproducible() {
        let a = chrome_trace(&[("x", &sample_probe())]);
        let b = chrome_trace(&[("x", &sample_probe())]);
        assert_eq!(a, b);
    }
}
