//! Chrome Trace Event JSON export (the format Perfetto and `chrome://
//! tracing` load): one *process* per probe (engine), "phases" thread
//! lanes carrying exact span slices, a counter track per active resource
//! (busy fraction, mean queue depth), and a task-concurrency counter.
//!
//! Spans that run concurrently (an admission-scheduled mix) are spread
//! across thread lanes so each lane holds only sequential-or-nested
//! slices — trace viewers render one lane as a call stack, and a
//! partially-overlapping pair on one lane draws as a lie (the
//! [`crate::validate`] checker rejects it). Lane assignment is greedy
//! lowest-free-lane over spans in start order, so a sequential run stays
//! entirely on the familiar single "phases" lane.
//!
//! When a [`CritPathReport`] for the same run is supplied
//! ([`chrome_trace_annotated`]), each span slice carries its blame
//! breakdown in `args.crit` — per-kind critical-path service/queue-wait
//! microseconds plus the dominant verdict — so clicking a phase in
//! Perfetto answers "why was this slow" directly.
//!
//! Timestamps are microseconds (the format's unit); bucketed counters are
//! emitted delta-style — a sample only when the value changes — so steady
//! regions cost one event. Output is deterministic: processes, resources,
//! and buckets are iterated in index order and floats use fixed-precision
//! formatting.

use crate::critpath::CritPathReport;
use crate::json::{escape, num};
use crate::timeline::TimelineProbe;
use simkit::SimTime;

fn us(t: SimTime) -> String {
    num(t as f64 / 1e3, 3)
}

/// Render probes as one Chrome Trace Event JSON document. Each `(name,
/// probe)` pair becomes a process; pass one pair per engine to see e.g.
/// Hive and PDW side by side on a shared time axis.
pub fn chrome_trace(procs: &[(&str, &TimelineProbe)]) -> String {
    let plain: Vec<(&str, &TimelineProbe, Option<&CritPathReport>)> =
        procs.iter().map(|&(n, p)| (n, p, None)).collect();
    chrome_trace_annotated(&plain)
}

/// [`chrome_trace`] with optional per-process critical-path blame
/// annotations riding on the span slices (see the module docs).
pub fn chrome_trace_annotated(procs: &[(&str, &TimelineProbe, Option<&CritPathReport>)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (i, (name, probe, report)) in procs.iter().enumerate() {
        let pid = i + 1;
        events.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":0,"name":"process_name","args":{{"name":{}}}}}"#,
            escape(name)
        ));
        let lanes = assign_lanes(probe.spans());
        let nlanes = lanes.iter().copied().max().map_or(1, |l| l + 1);
        for lane in 0..nlanes {
            let label = if lane == 0 {
                "phases".to_string()
            } else {
                format!("phases {}", lane + 1)
            };
            events.push(format!(
                r#"{{"ph":"M","pid":{pid},"tid":{},"name":"thread_name","args":{{"name":{}}}}}"#,
                lane + 1,
                escape(&label)
            ));
        }
        for (span, lane) in probe.spans().iter().zip(&lanes) {
            let mut kvs: Vec<String> = Vec::new();
            if let Some(n) = span.node {
                kvs.push(format!(r#""node":{n}"#));
            }
            if let Some(b) = report.and_then(|r| r.find(&span.name, span.start)) {
                let mut crit: Vec<String> = b
                    .components()
                    .iter()
                    .filter(|(_, v)| *v > 0)
                    .map(|(label, v)| format!(r#"{}:{}"#, escape(label), us(*v)))
                    .collect();
                if b.elapsed() > 0 {
                    let (label, v) = b.dominant();
                    crit.push(format!(
                        r#""dominant":{}"#,
                        escape(&format!(
                            "{label} {:.0}%",
                            v as f64 * 100.0 / b.elapsed() as f64
                        ))
                    ));
                }
                kvs.push(format!(r#""crit":{{{}}}"#, crit.join(",")));
            }
            let args = if kvs.is_empty() {
                String::new()
            } else {
                format!(r#","args":{{{}}}"#, kvs.join(","))
            };
            events.push(format!(
                r#"{{"ph":"X","pid":{pid},"tid":{},"cat":"phase","name":{},"ts":{},"dur":{}{args}}}"#,
                lane + 1,
                escape(&span.name),
                us(span.start),
                us(span.end.saturating_sub(span.start)),
            ));
        }
        let mut last = None;
        for &(at, running) in probe.task_samples() {
            if last == Some(running) {
                continue;
            }
            last = Some(running);
            events.push(format!(
                r#"{{"ph":"C","pid":{pid},"name":"tasks running","ts":{},"args":{{"running":{running}}}}}"#,
                us(at)
            ));
        }
        let width = probe.bucket_width();
        for res in probe.resources() {
            if !res.active() {
                continue;
            }
            counter_track(
                &mut events,
                pid,
                &format!("{} busy", res.name),
                "busy",
                width,
                res.buckets().len(),
                |b| num(res.busy_fraction(b, width), 4),
            );
            if res.ever_queued() {
                counter_track(
                    &mut events,
                    pid,
                    &format!("{} queue", res.name),
                    "depth",
                    width,
                    res.buckets().len(),
                    |b| num(res.mean_depth(b, width), 3),
                );
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Greedy lane assignment: process spans in start order (longest first at
/// ties) and place each on the lowest lane where it either starts after
/// everything already there or nests fully inside the lane's innermost
/// still-open span. Returns one lane index per span, in `spans` order.
fn assign_lanes(spans: &[crate::timeline::SpanRec]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        spans[a]
            .start
            .cmp(&spans[b].start)
            .then(spans[b].end.cmp(&spans[a].end))
            .then(a.cmp(&b))
    });
    // Per lane: stack of open span end times (innermost last).
    let mut lanes: Vec<Vec<SimTime>> = Vec::new();
    let mut out = vec![0usize; spans.len()];
    for idx in order {
        let s = &spans[idx];
        let lane = (0..lanes.len())
            .find(|&l| {
                let open = &mut lanes[l];
                while open.last().is_some_and(|&e| e <= s.start) {
                    open.pop();
                }
                open.last().is_none_or(|&e| s.end <= e)
            })
            .unwrap_or_else(|| {
                lanes.push(Vec::new());
                lanes.len() - 1
            });
        lanes[lane].push(s.end);
        out[idx] = lane;
    }
    out
}

/// Emit one counter's samples, bucket by bucket, skipping repeats and
/// closing with a zero sample after the last bucket.
fn counter_track(
    events: &mut Vec<String>,
    pid: usize,
    track: &str,
    key: &str,
    width: SimTime,
    buckets: usize,
    value: impl Fn(usize) -> String,
) {
    let name = escape(track);
    let mut prev: Option<String> = None;
    for b in 0..buckets {
        let v = value(b);
        if prev.as_deref() == Some(v.as_str()) {
            continue;
        }
        events.push(format!(
            r#"{{"ph":"C","pid":{pid},"name":{name},"ts":{},"args":{{"{key}":{v}}}}}"#,
            us(b as SimTime * width)
        ));
        prev = Some(v);
    }
    if prev.as_deref().is_some_and(|v| v != "0") {
        events.push(format!(
            r#"{{"ph":"C","pid":{pid},"name":{name},"ts":{},"args":{{"{key}":0}}}}"#,
            us(buckets as SimTime * width)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::validate::validate_text;
    use simkit::{secs, Sim};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn sample_probe() -> TimelineProbe {
        let mut sim: Sim<()> = Sim::new();
        let probe = Rc::new(RefCell::new(TimelineProbe::new(secs(1.0))));
        sim.set_probe(Some(probe.clone()));
        let disk = sim.add_resource("node0.disk0", 1);
        sim.emit_probe(simkit::ProbeEvent::SpanOpened {
            at: 0,
            name: "scan",
            node: Some(0),
            id: 0,
        });
        for _ in 0..2 {
            sim.use_resource(disk, secs(1.0), |_, _| {});
        }
        let end = sim.run(&mut ());
        sim.emit_probe(simkit::ProbeEvent::SpanClosed {
            at: end,
            name: "scan",
            node: Some(0),
            id: 0,
        });
        sim.set_probe(None);
        Rc::try_unwrap(probe).expect("sole owner").into_inner()
    }

    #[test]
    fn output_is_valid_json_with_expected_tracks() {
        let p = sample_probe();
        let doc = chrome_trace(&[("pdw", &p)]);
        let v = parse(&doc).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // The span slice is present with exact microsecond bounds.
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("one X event");
        assert_eq!(span.get("name").and_then(|n| n.as_str()), Some("scan"));
        assert_eq!(span.get("ts").and_then(|t| t.as_f64()), Some(0.0));
        assert_eq!(span.get("dur").and_then(|d| d.as_f64()), Some(2e6));
        // A sequential run stays on the single "phases" lane.
        assert_eq!(span.get("tid").and_then(|t| t.as_f64()), Some(1.0));
        // Busy and queue counter tracks exist for the disk.
        for track in ["node0.disk0 busy", "node0.disk0 queue"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(track)),
                "missing counter track {track}"
            );
        }
    }

    #[test]
    fn export_is_reproducible() {
        let a = chrome_trace(&[("x", &sample_probe())]);
        let b = chrome_trace(&[("x", &sample_probe())]);
        assert_eq!(a, b);
    }

    #[test]
    fn overlapping_spans_spread_across_lanes_and_validate() {
        // Two partially-overlapping jobs plus a nested child: jobs get
        // separate lanes, the child shares its parent's.
        let mut probe = TimelineProbe::new(secs(1.0));
        let ev = |ph: &str, at, name: &'static str, id| {
            if ph == "B" {
                simkit::ProbeEvent::SpanOpened {
                    at,
                    name,
                    node: None,
                    id,
                }
            } else {
                simkit::ProbeEvent::SpanClosed {
                    at,
                    name,
                    node: None,
                    id,
                }
            }
        };
        use simkit::probe::Probe as _;
        probe.on_event(&ev("B", 0, "job-a", 0));
        probe.on_event(&ev("B", secs(1.0), "job-a/step", 1));
        probe.on_event(&ev("E", secs(3.0), "job-a/step", 1));
        probe.on_event(&ev("B", secs(2.0), "job-b", 2));
        probe.on_event(&ev("E", secs(4.0), "job-a", 0));
        probe.on_event(&ev("E", secs(6.0), "job-b", 2));
        let doc = chrome_trace(&[("mix", &probe)]);
        let sum = validate_text(&doc).expect("lanes make the trace validate");
        assert_eq!(sum.spans, 3);
        let v = parse(&doc).expect("json");
        let tid_of = |name: &str| {
            v.get("traceEvents")
                .and_then(|e| e.as_arr())
                .unwrap()
                .iter()
                .find(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && e.get("name").and_then(|n| n.as_str()) == Some(name)
                })
                .and_then(|e| e.get("tid"))
                .and_then(|t| t.as_f64())
                .unwrap()
        };
        assert_eq!(tid_of("job-a"), 1.0);
        assert_eq!(tid_of("job-a/step"), 1.0, "nested child shares the lane");
        assert_eq!(tid_of("job-b"), 2.0, "overlapping job moves to lane 2");
    }

    #[test]
    fn blame_annotations_ride_on_span_args() {
        let mut sim: Sim<()> = Sim::new();
        let tl = Rc::new(RefCell::new(TimelineProbe::new(secs(1.0))));
        let cp = Rc::new(RefCell::new(crate::CritPathProbe::new()));
        let tee = crate::Tee::of(vec![tl.clone(), cp.clone()]);
        sim.set_probe(Some(Rc::new(RefCell::new(tee))));
        let disk = sim.add_resource("node0.disk0", 1);
        let sid = sim.next_span_id();
        sim.emit_probe(simkit::ProbeEvent::SpanOpened {
            at: 0,
            name: "scan",
            node: None,
            id: sid,
        });
        let prev = sim.set_probe_ctx(Some(sid));
        sim.use_resource(disk, secs(2.0), |_, _| {});
        sim.set_probe_ctx(prev);
        let end = sim.run(&mut ());
        sim.emit_probe(simkit::ProbeEvent::SpanClosed {
            at: end,
            name: "scan",
            node: None,
            id: sid,
        });
        sim.set_probe(None);
        let report = Rc::try_unwrap(cp)
            .map(|c| c.into_inner().report())
            .unwrap_or_else(|_| panic!("sole owner"));
        let tl = Rc::try_unwrap(tl).expect("sole owner").into_inner();
        let doc = chrome_trace_annotated(&[("pdw", &tl, Some(&report))]);
        validate_text(&doc).expect("annotated trace validates");
        let v = parse(&doc).expect("json");
        let span = v
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .unwrap()
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("span");
        let crit = span
            .get("args")
            .and_then(|a| a.get("crit"))
            .expect("crit annotation");
        assert_eq!(
            crit.get("disk.svc").and_then(|d| d.as_f64()),
            Some(2e6),
            "2s of disk service in µs"
        );
        assert_eq!(
            crit.get("dominant").and_then(|d| d.as_str()),
            Some("disk.svc 100%")
        );
    }
}
