//! Property-based tests: operator kernels against naive reference
//! implementations, and the invariants distributed execution relies on.

use proptest::prelude::*;
use relational::expr::{col, like_match};
use relational::{ops, AggCall, JoinKind, Row, Value};

fn arb_row() -> impl Strategy<Value = Row> {
    (0i64..50, 0i64..20, -100i64..100)
        .prop_map(|(a, b, c)| vec![Value::I64(a), Value::I64(b), Value::I64(c)])
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(arb_row(), 0..max)
}

// ---- hash join vs nested loop ---------------------------------------------

fn nested_loop_inner(l: &[Row], r: &[Row], lc: usize, rc: usize) -> Vec<Row> {
    let mut out = Vec::new();
    for a in l {
        for b in r {
            if !a[lc].is_null() && a[lc] == b[rc] {
                let mut row = a.clone();
                row.extend(b.iter().cloned());
                out.push(row);
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn hash_join_matches_nested_loop(l in arb_rows(60), r in arb_rows(60)) {
        let mut got = ops::hash_join(&l, &r, &[(0, 0)], JoinKind::Inner, None, 3);
        let mut want = nested_loop_inner(&l, &r, 0, 0);
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn semi_plus_anti_partition_the_left(l in arb_rows(60), r in arb_rows(60)) {
        let semi = ops::hash_join(&l, &r, &[(0, 0)], JoinKind::LeftSemi, None, 3);
        let anti = ops::hash_join(&l, &r, &[(0, 0)], JoinKind::LeftAnti, None, 3);
        prop_assert_eq!(semi.len() + anti.len(), l.len());
        let mut both = semi;
        both.extend(anti);
        both.sort();
        let mut left = l.clone();
        left.sort();
        prop_assert_eq!(both, left);
    }

    #[test]
    fn left_join_keeps_every_left_row(l in arb_rows(40), r in arb_rows(40)) {
        let out = ops::hash_join(&l, &r, &[(0, 0)], JoinKind::Left, None, 3);
        // Each left row appears max(1, matches) times.
        prop_assert!(out.len() >= l.len());
        let inner = ops::hash_join(&l, &r, &[(0, 0)], JoinKind::Inner, None, 3);
        let unmatched = out.iter().filter(|row| row[3].is_null()).count();
        prop_assert_eq!(inner.len() + unmatched, out.len());
    }
}

// ---- distributed aggregation invariant --------------------------------------

proptest! {
    #[test]
    fn partial_merge_equals_oneshot_for_any_split(
        rows in arb_rows(120),
        split in 0usize..120,
    ) {
        let gb = [(col(0), "g".to_string())];
        let aggs = [
            AggCall::sum(col(2), "s"),
            AggCall::count_star("n"),
            AggCall::min(col(2), "lo"),
            AggCall::max(col(2), "hi"),
            AggCall::avg(col(2), "a"),
            AggCall::count_distinct(col(1), "d"),
        ];
        let split = split.min(rows.len());
        let p1 = ops::aggregate_partial(&rows[..split], &gb, &aggs);
        let p2 = ops::aggregate_partial(&rows[split..], &gb, &aggs);
        let mut merged = ops::aggregate_finish(ops::aggregate_merge(p1, p2));
        let mut oneshot = ops::hash_aggregate(&rows, &gb, &aggs);
        merged.sort();
        oneshot.sort();
        prop_assert!(relational::testing::rows_approx_eq(&merged, &oneshot, 1e-9));
    }

    #[test]
    fn hash_partition_is_a_partition(rows in arb_rows(150), n in 1usize..20) {
        let parts = ops::hash_partition(rows.clone(), &[0], n);
        prop_assert_eq!(parts.len(), n);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, rows.len());
        // Same key never lands in two partitions.
        for (i, p) in parts.iter().enumerate() {
            for row in p {
                prop_assert_eq!(ops::bucket_of(row, &[0], n), i);
            }
        }
        // Co-partitioned join equals global join.
        let parts_b = ops::hash_partition(rows.clone(), &[0], n);
        let mut partitioned: Vec<Row> = Vec::new();
        for i in 0..n {
            partitioned.extend(ops::hash_join(
                &parts[i], &parts_b[i], &[(0, 0)], JoinKind::Inner, None, 3,
            ));
        }
        let mut global = ops::hash_join(&rows, &rows, &[(0, 0)], JoinKind::Inner, None, 3);
        partitioned.sort();
        global.sort();
        prop_assert_eq!(partitioned, global);
    }
}

// ---- LIKE matcher vs naive backtracking reference ----------------------------

fn naive_like(s: &[char], p: &[char]) -> bool {
    match (s.first(), p.first()) {
        (_, None) => s.is_empty(),
        (_, Some('%')) => naive_like(s, &p[1..]) || (!s.is_empty() && naive_like(&s[1..], p)),
        (Some(c), Some(pc)) if *pc == '_' || pc == c => naive_like(&s[1..], &p[1..]),
        _ => false,
    }
}

proptest! {
    #[test]
    fn like_matches_reference(s in "[abc]{0,12}", p in "[abc%_]{0,8}") {
        let sc: Vec<char> = s.chars().collect();
        let pc: Vec<char> = p.chars().collect();
        prop_assert_eq!(like_match(&s, &p), naive_like(&sc, &pc));
    }
}

// ---- value total order ---------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|v| Value::I64(v as i64)),
        (-1000i64..1000).prop_map(Value::Decimal),
        (-10000i32..10000).prop_map(Value::Date),
        any::<f32>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(|f| Value::F64(f as f64)),
        "[a-z]{0,6}".prop_map(Value::str),
    ]
}

proptest! {
    #[test]
    fn value_order_is_total_and_consistent(
        a in arb_value(), b in arb_value(), c in arb_value()
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (of <=).
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // Eq ⇒ equal hashes.
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }
}
