//! Single-node reference executor: the ground truth every distributed
//! engine's answers are checked against. Executes a [`LogicalPlan`] by
//! materializing each operator with the shared kernels in [`crate::ops`].

use crate::catalog::Catalog;
use crate::ops;
use crate::plan::LogicalPlan;
use crate::schema::Schema;
use crate::value::Row;

/// Execute a plan against a catalog, returning `(schema, rows)`.
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> (Schema, Vec<Row>) {
    let schema = plan.schema(catalog);
    let rows = run(plan, catalog);
    (schema, rows)
}

fn run(plan: &LogicalPlan, catalog: &Catalog) -> Vec<Row> {
    match plan {
        LogicalPlan::Scan { table } => catalog.get(table).rows.clone(),
        LogicalPlan::Filter { input, pred } => ops::filter(run(input, catalog), pred),
        LogicalPlan::Project { input, exprs } => ops::project(&run(input, catalog), exprs),
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
            ..
        } => {
            let l = run(left, catalog);
            let r = run(right, catalog);
            let right_width = right.schema(catalog).len();
            ops::hash_join(&l, &r, on, *kind, residual.as_ref(), right_width)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => ops::hash_aggregate(&run(input, catalog), group_by, aggs),
        LogicalPlan::Sort { input, keys } => ops::sort(run(input, catalog), keys),
        LogicalPlan::Limit { input, n } => ops::limit(run(input, catalog), *n),
        LogicalPlan::Materialize { input, .. } => run(input, catalog),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Table;
    use crate::expr::{col, lit_i64};
    use crate::plan::{AggCall, JoinKind, SortKey};
    use crate::schema::DataType;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            "orders",
            Table::new(
                Schema::of(&[("o_id", DataType::I64), ("o_cust", DataType::I64)]),
                vec![
                    vec![Value::I64(1), Value::I64(10)],
                    vec![Value::I64(2), Value::I64(10)],
                    vec![Value::I64(3), Value::I64(20)],
                ],
            ),
        );
        c.add(
            "cust",
            Table::new(
                Schema::of(&[("c_id", DataType::I64), ("c_name", DataType::Str)]),
                vec![
                    vec![Value::I64(10), Value::str("alice")],
                    vec![Value::I64(20), Value::str("bob")],
                    vec![Value::I64(30), Value::str("carol")],
                ],
            ),
        );
        c
    }

    #[test]
    fn join_group_sort_pipeline() {
        let c = catalog();
        // SELECT c_name, count(*) FROM cust JOIN orders ON c_id=o_cust
        // GROUP BY c_name ORDER BY count DESC, name ASC
        let plan = LogicalPlan::scan("cust")
            .join(LogicalPlan::scan("orders"), vec![(0, 1)])
            .aggregate(vec![(col(1), "c_name")], vec![AggCall::count_star("n")])
            .sort(vec![SortKey::desc(col(1)), SortKey::asc(col(0))]);
        let (schema, rows) = execute(&plan, &c);
        assert_eq!(schema.col("n"), 1);
        assert_eq!(
            rows,
            vec![
                vec![Value::str("alice"), Value::I64(2)],
                vec![Value::str("bob"), Value::I64(1)],
            ]
        );
    }

    #[test]
    fn anti_join_finds_customers_without_orders() {
        let c = catalog();
        let plan = LogicalPlan::scan("cust").join_kind(
            LogicalPlan::scan("orders"),
            JoinKind::LeftAnti,
            vec![(0, 1)],
            None,
        );
        let (_, rows) = execute(&plan, &c);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::str("carol"));
    }

    #[test]
    fn scalar_subquery_via_cross_join() {
        let c = catalog();
        // SELECT o_id FROM orders WHERE o_id > (SELECT avg(o_id) FROM orders)
        let scalar = LogicalPlan::scan("orders").aggregate(vec![], vec![AggCall::avg(col(0), "a")]);
        let plan = LogicalPlan::scan("orders")
            .join_kind(scalar, JoinKind::Inner, vec![], Some(col(0).gt(col(2))))
            .project(vec![(col(0), "o_id")]);
        let (_, rows) = execute(&plan, &c);
        assert_eq!(rows, vec![vec![Value::I64(3)]]);
    }

    #[test]
    fn limit_truncates() {
        let c = catalog();
        let plan = LogicalPlan::scan("orders")
            .sort(vec![SortKey::desc(col(0))])
            .limit(1);
        let (_, rows) = execute(&plan, &c);
        assert_eq!(rows, vec![vec![Value::I64(3), Value::I64(20)]]);
    }

    #[test]
    fn filter_with_literal() {
        let c = catalog();
        let plan = LogicalPlan::scan("orders").filter(col(1).eq(lit_i64(10)));
        let (_, rows) = execute(&plan, &c);
        assert_eq!(rows.len(), 2);
    }
}
