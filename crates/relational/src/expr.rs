//! Expression trees and their interpreter.
//!
//! Expressions are built by hand when constructing the 22 TPC-H plans, so
//! the API favours fluent builders: `col(3).gt(lit_date(1995, 3, 15))`.
//! NULL semantics follow SQL three-valued logic for comparisons and
//! conjunctions (sufficient for TPC-H, which has no NULL data, but exercised
//! by property tests anyway).

use crate::date;
use crate::value::Value;
use std::sync::Arc;

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators. All arithmetic evaluates in `f64` (matching how the
/// paper's engines compute TPC-H aggregate expressions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// An expression over a row.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Column reference by position.
    Col(usize),
    /// Literal.
    Lit(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// SQL LIKE with `%` and `_` wildcards.
    Like(Box<Expr>, String),
    NotLike(Box<Expr>, String),
    /// `expr IN (v1, v2, ...)`.
    InList(Box<Expr>, Vec<Value>),
    /// Inclusive range check.
    Between(Box<Expr>, Value, Value),
    /// Searched CASE.
    Case {
        whens: Vec<(Expr, Expr)>,
        otherwise: Box<Expr>,
    },
    /// 1-based SQL SUBSTRING(expr, start, len).
    Substr(Box<Expr>, usize, usize),
    /// EXTRACT(YEAR FROM date-expr).
    ExtractYear(Box<Expr>),
    IsNull(Box<Expr>),
}

impl Expr {
    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            Expr::Col(i) => row[*i].clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(row), b.eval(row));
                if va.is_null() || vb.is_null() {
                    return Value::Null;
                }
                let c = va.cmp(&vb);
                Value::Bool(match op {
                    CmpOp::Eq => c.is_eq(),
                    CmpOp::Ne => c.is_ne(),
                    CmpOp::Lt => c.is_lt(),
                    CmpOp::Le => c.is_le(),
                    CmpOp::Gt => c.is_gt(),
                    CmpOp::Ge => c.is_ge(),
                })
            }
            Expr::And(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match p.eval(row) {
                        Value::Bool(false) => return Value::Bool(false),
                        Value::Null => saw_null = true,
                        Value::Bool(true) => {}
                        other => panic!("AND over non-boolean {other:?}"),
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Bool(true)
                }
            }
            Expr::Or(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match p.eval(row) {
                        Value::Bool(true) => return Value::Bool(true),
                        Value::Null => saw_null = true,
                        Value::Bool(false) => {}
                        other => panic!("OR over non-boolean {other:?}"),
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                }
            }
            Expr::Not(e) => match e.eval(row) {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                other => panic!("NOT over non-boolean {other:?}"),
            },
            Expr::Arith(op, a, b) => {
                let (va, vb) = (a.eval(row), b.eval(row));
                if va.is_null() || vb.is_null() {
                    return Value::Null;
                }
                // Date +/- integer days stays a date.
                if let (Value::Date(d), Some(n)) = (&va, vb.as_i64()) {
                    match op {
                        ArithOp::Add => return Value::Date(d + n as i32),
                        ArithOp::Sub => return Value::Date(d - n as i32),
                        _ => {}
                    }
                }
                let (x, y) = (
                    va.as_f64().unwrap_or_else(|| panic!("non-numeric {va:?}")),
                    vb.as_f64().unwrap_or_else(|| panic!("non-numeric {vb:?}")),
                );
                Value::F64(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                })
            }
            Expr::Like(e, pat) => match e.eval(row) {
                Value::Str(s) => Value::Bool(like_match(&s, pat)),
                Value::Null => Value::Null,
                other => panic!("LIKE over non-string {other:?}"),
            },
            Expr::NotLike(e, pat) => match e.eval(row) {
                Value::Str(s) => Value::Bool(!like_match(&s, pat)),
                Value::Null => Value::Null,
                other => panic!("NOT LIKE over non-string {other:?}"),
            },
            Expr::InList(e, list) => {
                let v = e.eval(row);
                if v.is_null() {
                    return Value::Null;
                }
                Value::Bool(list.contains(&v))
            }
            Expr::Between(e, lo, hi) => {
                let v = e.eval(row);
                if v.is_null() {
                    return Value::Null;
                }
                Value::Bool(&v >= lo && &v <= hi)
            }
            Expr::Case { whens, otherwise } => {
                for (cond, out) in whens {
                    if matches!(cond.eval(row), Value::Bool(true)) {
                        return out.eval(row);
                    }
                }
                otherwise.eval(row)
            }
            Expr::Substr(e, start, len) => match e.eval(row) {
                Value::Str(s) => {
                    let start = start.saturating_sub(1);
                    let out: String = s.chars().skip(start).take(*len).collect();
                    Value::Str(Arc::from(out.as_str()))
                }
                Value::Null => Value::Null,
                other => panic!("SUBSTRING over non-string {other:?}"),
            },
            Expr::ExtractYear(e) => match e.eval(row) {
                Value::Date(d) => Value::I64(date::year(d) as i64),
                Value::Null => Value::Null,
                other => panic!("EXTRACT YEAR over non-date {other:?}"),
            },
            Expr::IsNull(e) => Value::Bool(e.eval(row).is_null()),
        }
    }

    /// Evaluate as a predicate: NULL counts as false (SQL WHERE semantics).
    pub fn matches(&self, row: &[Value]) -> bool {
        matches!(self.eval(row), Value::Bool(true))
    }

    // ---- fluent builders -------------------------------------------------
    // The arithmetic names intentionally mirror SQL/`std::ops`; `Expr` is a
    // plan-construction DSL, not a numeric type, so the trait impls would
    // mislead more than the names do.

    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(rhs))
    }
    pub fn like(self, pat: impl Into<String>) -> Expr {
        Expr::Like(Box::new(self), pat.into())
    }
    pub fn not_like(self, pat: impl Into<String>) -> Expr {
        Expr::NotLike(Box::new(self), pat.into())
    }
    pub fn in_list(self, vals: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), vals)
    }
    pub fn between(self, lo: Value, hi: Value) -> Expr {
        Expr::Between(Box::new(self), lo, hi)
    }
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    pub fn substr(self, start: usize, len: usize) -> Expr {
        Expr::Substr(Box::new(self), start, len)
    }
    pub fn extract_year(self) -> Expr {
        Expr::ExtractYear(Box::new(self))
    }
}

/// Column reference builder.
pub fn col(i: usize) -> Expr {
    Expr::Col(i)
}

/// Literal builders.
pub fn lit(v: Value) -> Expr {
    Expr::Lit(v)
}
pub fn lit_i64(v: i64) -> Expr {
    Expr::Lit(Value::I64(v))
}
pub fn lit_f64(v: f64) -> Expr {
    Expr::Lit(Value::F64(v))
}
pub fn lit_dec(v: f64) -> Expr {
    Expr::Lit(Value::decimal(v))
}
pub fn lit_str(s: &str) -> Expr {
    Expr::Lit(Value::str(s))
}
pub fn lit_date(y: i32, m: u32, d: u32) -> Expr {
    Expr::Lit(Value::Date(date::date(y, m, d)))
}

/// N-ary conjunction / disjunction.
pub fn and(parts: Vec<Expr>) -> Expr {
    Expr::And(parts)
}
pub fn or(parts: Vec<Expr>) -> Expr {
    Expr::Or(parts)
}

impl Expr {
    /// Collect every column index referenced by this expression.
    pub fn referenced_cols(&self, out: &mut std::collections::BTreeSet<usize>) {
        match self {
            Expr::Col(i) => {
                out.insert(*i);
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.referenced_cols(out);
                b.referenced_cols(out);
            }
            Expr::And(parts) | Expr::Or(parts) => {
                for p in parts {
                    p.referenced_cols(out);
                }
            }
            Expr::Not(e)
            | Expr::Like(e, _)
            | Expr::NotLike(e, _)
            | Expr::InList(e, _)
            | Expr::Between(e, _, _)
            | Expr::Substr(e, _, _)
            | Expr::ExtractYear(e)
            | Expr::IsNull(e) => e.referenced_cols(out),
            Expr::Case { whens, otherwise } => {
                for (c, o) in whens {
                    c.referenced_cols(out);
                    o.referenced_cols(out);
                }
                otherwise.referenced_cols(out);
            }
        }
    }

    /// Rewrite column indices through `map` (old index → new index).
    /// Panics if a referenced column is missing from the map — that is a
    /// planning bug, not a data condition.
    pub fn remap_cols(&self, map: &std::collections::BTreeMap<usize, usize>) -> Expr {
        let m = |e: &Expr| Box::new(e.remap_cols(map));
        match self {
            Expr::Col(i) => Expr::Col(
                *map.get(i)
                    .unwrap_or_else(|| panic!("column {i} missing from remap")),
            ),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(*op, m(a), m(b)),
            Expr::Arith(op, a, b) => Expr::Arith(*op, m(a), m(b)),
            Expr::And(parts) => Expr::And(parts.iter().map(|p| p.remap_cols(map)).collect()),
            Expr::Or(parts) => Expr::Or(parts.iter().map(|p| p.remap_cols(map)).collect()),
            Expr::Not(e) => Expr::Not(m(e)),
            Expr::Like(e, p) => Expr::Like(m(e), p.clone()),
            Expr::NotLike(e, p) => Expr::NotLike(m(e), p.clone()),
            Expr::InList(e, l) => Expr::InList(m(e), l.clone()),
            Expr::Between(e, lo, hi) => Expr::Between(m(e), lo.clone(), hi.clone()),
            Expr::Case { whens, otherwise } => Expr::Case {
                whens: whens
                    .iter()
                    .map(|(c, o)| (c.remap_cols(map), o.remap_cols(map)))
                    .collect(),
                otherwise: m(otherwise),
            },
            Expr::Substr(e, a, b) => Expr::Substr(m(e), *a, *b),
            Expr::ExtractYear(e) => Expr::ExtractYear(m(e)),
            Expr::IsNull(e) => Expr::IsNull(m(e)),
        }
    }
}

/// An inclusive per-column value interval implied by a predicate. `None`
/// means unbounded on that side. Produced by [`Expr::column_bounds`] and
/// consumed by block-level min/max pruning in the columnar scan paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bounds {
    pub lo: Option<Value>,
    pub hi: Option<Value>,
}

impl Bounds {
    fn lo(v: Value) -> Bounds {
        Bounds {
            lo: Some(v),
            hi: None,
        }
    }
    fn hi(v: Value) -> Bounds {
        Bounds {
            lo: None,
            hi: Some(v),
        }
    }
    fn range(lo: Value, hi: Value) -> Bounds {
        Bounds {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// AND of two bounds on the same column: the tighter interval.
    /// Conjunction of two intervals (both restrictions apply).
    pub fn intersect(self, other: Bounds) -> Bounds {
        Bounds {
            lo: max_opt(self.lo, other.lo),
            hi: min_opt(self.hi, other.hi),
        }
    }

    /// OR of two bounds on the same column: the covering interval
    /// (unbounded on a side if either operand is).
    fn union(self, other: Bounds) -> Bounds {
        Bounds {
            lo: self.lo.zip(other.lo).map(|(a, b)| a.min(b)),
            hi: self.hi.zip(other.hi).map(|(a, b)| a.max(b)),
        }
    }
}

fn max_opt(a: Option<Value>, b: Option<Value>) -> Option<Value> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) | (None, x) => x,
    }
}

fn min_opt(a: Option<Value>, b: Option<Value>) -> Option<Value> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) | (None, x) => x,
    }
}

impl Expr {
    /// Per-column inclusive bounds implied by this predicate: every row the
    /// predicate accepts holds, for each `(col, bounds)` entry, a
    /// **non-NULL** value inside the interval. A block whose non-null
    /// min/max range misses the interval (or that is all-NULL in that
    /// column) therefore contains no accepted row and may be skipped.
    ///
    /// The analysis is deliberately conservative — it only weakens, never
    /// strengthens: strict comparisons widen to inclusive bounds, OR keeps
    /// a column only when *every* branch bounds it (interval union),
    /// anything it cannot reason about (NOT, LIKE, IS NULL, column-column
    /// comparisons, arithmetic over the column) contributes nothing.
    pub fn column_bounds(&self) -> std::collections::BTreeMap<usize, Bounds> {
        use std::collections::BTreeMap;
        let mut out = BTreeMap::new();
        match self {
            Expr::Cmp(op, a, b) => {
                let (c, v, op) = match (a.as_ref(), b.as_ref()) {
                    (Expr::Col(c), Expr::Lit(v)) => (*c, v, *op),
                    // `lit op col` flips to `col flipped-op lit`.
                    (Expr::Lit(v), Expr::Col(c)) => {
                        let flipped = match op {
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::Le => CmpOp::Ge,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::Ge => CmpOp::Le,
                            other => *other,
                        };
                        (*c, v, flipped)
                    }
                    _ => return out,
                };
                if v.is_null() {
                    return out; // NULL literal: predicate never accepts.
                }
                let b = match op {
                    CmpOp::Eq => Bounds::range(v.clone(), v.clone()),
                    // Strict bounds widen to inclusive — sound for pruning.
                    CmpOp::Gt | CmpOp::Ge => Bounds::lo(v.clone()),
                    CmpOp::Lt | CmpOp::Le => Bounds::hi(v.clone()),
                    CmpOp::Ne => return out,
                };
                out.insert(c, b);
            }
            Expr::Between(e, lo, hi) => {
                if let Expr::Col(c) = e.as_ref() {
                    if !lo.is_null() && !hi.is_null() {
                        out.insert(*c, Bounds::range(lo.clone(), hi.clone()));
                    }
                }
            }
            Expr::InList(e, list) => {
                if let Expr::Col(c) = e.as_ref() {
                    // An accepted value is non-NULL, so it can only equal a
                    // non-NULL list entry; NULL entries are ignored.
                    let vals: Vec<&Value> = list.iter().filter(|v| !v.is_null()).collect();
                    if let (Some(lo), Some(hi)) = (vals.iter().min(), vals.iter().max()) {
                        out.insert(*c, Bounds::range((*lo).clone(), (*hi).clone()));
                    }
                }
            }
            Expr::And(parts) => {
                for p in parts {
                    for (c, b) in p.column_bounds() {
                        let merged = match out.remove(&c) {
                            Some(prev) => Bounds::intersect(prev, b),
                            None => b,
                        };
                        out.insert(c, merged);
                    }
                }
            }
            Expr::Or(parts) => {
                let mut iter = parts.iter();
                let Some(first) = iter.next() else {
                    return out;
                };
                let mut acc = first.column_bounds();
                for p in iter {
                    let branch = p.column_bounds();
                    // Keep only columns bounded in every branch, unioned.
                    acc = acc
                        .into_iter()
                        .filter_map(|(c, b)| branch.get(&c).map(|ob| (c, b.union(ob.clone()))))
                        .collect();
                    if acc.is_empty() {
                        break;
                    }
                }
                out = acc;
            }
            _ => {}
        }
        out
    }
}

/// SQL LIKE matcher (`%` = any run, `_` = any single char). Iterative
/// two-pointer algorithm with backtracking over the last `%`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_s) = (None::<usize>, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_s = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_semantics() {
        assert!(like_match("PROMO BURNISHED", "PROMO%"));
        assert!(like_match("green almond antique", "%green%"));
        assert!(!like_match("STANDARD", "PROMO%"));
        assert!(like_match("MEDIUM POLISHED", "%POLISHED%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abbc", "a_c"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("x%y", "x%y"));
        // Q13 pattern: '%special%requests%'
        assert!(like_match(
            "blah special blah requests blah",
            "%special%requests%"
        ));
        assert!(!like_match("requests then special", "%special%requests%"));
    }

    #[test]
    fn comparisons_and_logic() {
        let row = vec![Value::I64(5), Value::str("hello"), Value::Null];
        assert!(col(0).gt(lit_i64(3)).matches(&row));
        assert!(!col(0).gt(lit_i64(7)).matches(&row));
        assert!(col(1).eq(lit_str("hello")).matches(&row));
        // NULL propagates and WHERE treats it as false.
        assert_eq!(col(2).eq(lit_i64(1)).eval(&row), Value::Null);
        assert!(!col(2).eq(lit_i64(1)).matches(&row));
        // 3VL: false AND null = false; true AND null = null.
        assert_eq!(
            and(vec![col(0).gt(lit_i64(7)), col(2).eq(lit_i64(1))]).eval(&row),
            Value::Bool(false)
        );
        assert_eq!(
            and(vec![col(0).gt(lit_i64(3)), col(2).eq(lit_i64(1))]).eval(&row),
            Value::Null
        );
        // true OR null = true.
        assert_eq!(
            or(vec![col(0).gt(lit_i64(3)), col(2).eq(lit_i64(1))]).eval(&row),
            Value::Bool(true)
        );
    }

    #[test]
    fn arithmetic_promotes_to_f64() {
        let row = vec![Value::Decimal(10000), Value::Decimal(5)]; // 100.00, 0.05
                                                                  // l_extendedprice * (1 - l_discount)
        let e = col(0).mul(lit_f64(1.0).sub(col(1)));
        match e.eval(&row) {
            Value::F64(v) => assert!((v - 95.0).abs() < 1e-9),
            other => panic!("expected f64, got {other:?}"),
        }
    }

    #[test]
    fn date_plus_days() {
        let row = vec![Value::Date(date::date(1998, 12, 1))];
        let e = col(0).sub(lit_i64(90));
        assert_eq!(e.eval(&row), Value::Date(date::date(1998, 9, 2)));
    }

    #[test]
    fn case_between_inlist_substr_extract() {
        let row = vec![
            Value::str("BUILDING"),
            Value::I64(7),
            Value::Date(date::date(1995, 3, 15)),
        ];
        let c = Expr::Case {
            whens: vec![(col(0).eq(lit_str("BUILDING")), lit_i64(1))],
            otherwise: Box::new(lit_i64(0)),
        };
        assert_eq!(c.eval(&row), Value::I64(1));
        assert!(col(1).between(Value::I64(5), Value::I64(7)).matches(&row));
        assert!(!col(1).between(Value::I64(8), Value::I64(9)).matches(&row));
        assert!(col(1)
            .in_list(vec![Value::I64(7), Value::I64(9)])
            .matches(&row));
        assert_eq!(col(0).substr(1, 2).eval(&row), Value::str("BU"));
        assert_eq!(col(2).extract_year().eval(&row), Value::I64(1995));
    }

    #[test]
    fn column_bounds_from_comparisons_and_ranges() {
        // shipdate >= d1 AND shipdate < d2 AND discount BETWEEN .05 AND .07
        let p = and(vec![
            col(10).ge(lit_date(1994, 1, 1)),
            col(10).lt(lit_date(1995, 1, 1)),
            col(6).between(Value::decimal(0.05), Value::decimal(0.07)),
        ]);
        let b = p.column_bounds();
        assert_eq!(
            b[&10],
            Bounds {
                lo: Some(Value::Date(date::date(1994, 1, 1))),
                // Strict `<` widens to inclusive.
                hi: Some(Value::Date(date::date(1995, 1, 1))),
            }
        );
        assert_eq!(
            b[&6],
            Bounds {
                lo: Some(Value::Decimal(5)),
                hi: Some(Value::Decimal(7)),
            }
        );
        // Flipped literal-first comparison.
        let b = lit_i64(3).lt(col(2)).column_bounds();
        assert_eq!(
            b[&2],
            Bounds {
                lo: Some(Value::I64(3)),
                hi: None
            }
        );
        // Eq pins both sides; Ne and column-column bound nothing.
        assert_eq!(
            col(0).eq(lit_i64(7)).column_bounds()[&0],
            Bounds {
                lo: Some(Value::I64(7)),
                hi: Some(Value::I64(7))
            }
        );
        assert!(col(0).ne(lit_i64(7)).column_bounds().is_empty());
        assert!(col(0).lt(col(1)).column_bounds().is_empty());
    }

    #[test]
    fn column_bounds_or_unions_only_common_columns() {
        // Q19 shape: every branch bounds p_size, only some bound quantity.
        let p = or(vec![
            and(vec![
                col(9).between(Value::I64(1), Value::I64(5)),
                col(4).ge(lit_i64(1)),
            ]),
            and(vec![col(9).between(Value::I64(1), Value::I64(10))]),
            and(vec![col(9).between(Value::I64(1), Value::I64(15))]),
        ]);
        let b = p.column_bounds();
        assert_eq!(
            b[&9],
            Bounds {
                lo: Some(Value::I64(1)),
                hi: Some(Value::I64(15))
            }
        );
        // quantity is not bounded in every branch, so it must drop out.
        assert!(!b.contains_key(&4));
        // A branch with no bounds at all kills every column.
        let p = or(vec![
            col(9).between(Value::I64(1), Value::I64(5)),
            col(0).like("x%"),
        ]);
        assert!(p.column_bounds().is_empty());
    }

    #[test]
    fn column_bounds_in_list_skips_nulls() {
        let b = col(3)
            .in_list(vec![Value::I64(9), Value::Null, Value::I64(2)])
            .column_bounds();
        assert_eq!(
            b[&3],
            Bounds {
                lo: Some(Value::I64(2)),
                hi: Some(Value::I64(9))
            }
        );
        // All-NULL list never accepts, bounds nothing.
        assert!(col(3).in_list(vec![Value::Null]).column_bounds().is_empty());
        // Predicates over NULL-propagating shapes bound nothing.
        assert!(Expr::IsNull(Box::new(col(3))).column_bounds().is_empty());
        assert!(col(3).eq(lit(Value::Null)).column_bounds().is_empty());
    }

    #[test]
    fn is_null_and_not() {
        let row = vec![Value::Null, Value::Bool(true)];
        assert!(Expr::IsNull(Box::new(col(0))).matches(&row));
        assert!(!Expr::IsNull(Box::new(col(1))).matches(&row));
        assert!(!col(1).negate().matches(&row));
    }
}
