//! In-memory tables and a catalog, used directly by the reference executor
//! and as the staging area engines load from.

use crate::plan::SchemaProvider;
use crate::schema::Schema;
use crate::value::{row_bytes, Row};
use std::collections::BTreeMap;

/// A fully materialized table.
#[derive(Clone, Debug)]
pub struct Table {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row arity mismatch"
        );
        Table { schema, rows }
    }

    /// Approximate uncompressed byte size (drives load/scan volume models).
    pub fn byte_size(&self) -> u64 {
        self.rows.iter().map(|r| row_bytes(r)).sum()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Name -> table map. `BTreeMap` so [`Catalog::names`] iterates in sorted
/// order — catalog enumeration feeds result paths and must be deterministic.
#[derive(Default, Clone, Debug)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    pub fn add(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    pub fn get(&self, name: &str) -> &Table {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("no table `{name}` in catalog"))
    }

    pub fn try_get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

impl SchemaProvider for Catalog {
    fn table_schema(&self, name: &str) -> &Schema {
        &self.get(name).schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::value::Value;

    #[test]
    fn catalog_round_trip() {
        let mut c = Catalog::new();
        let schema = Schema::of(&[("a", DataType::I64)]);
        c.add("t", Table::new(schema, vec![vec![Value::I64(1)]]));
        assert_eq!(c.get("t").len(), 1);
        assert_eq!(c.get("t").byte_size(), 8);
        assert!(c.try_get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "no table `zz`")]
    fn missing_table_panics() {
        Catalog::new().get("zz");
    }
}
