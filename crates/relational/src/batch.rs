//! Vectorized batch execution: typed column vectors and batch operators.
//!
//! A [`ColumnBatch`] holds a run of rows decomposed into per-column typed
//! vectors ([`Column`]) with an explicit validity mask — the in-memory
//! shape a columnar scan (the `storage::colblock` format) decodes into,
//! and the shape modern vectorized engines execute over. The operators
//! here ([`filter`], [`project`], [`hash_join`], [`aggregate_partial`],
//! [`sort`], [`limit`]) consume and produce batches and are
//! answer-equivalent to the row-at-a-time kernels in [`crate::ops`]: same
//! SQL three-valued NULL semantics, same float accumulation order, same
//! output order. The row kernels remain the compat layer for existing
//! callers; [`ColumnBatch::from_rows`] / [`ColumnBatch::to_rows`] shim
//! between the two worlds.

use crate::catalog::Catalog;
use crate::date;
use crate::expr::{like_match, ArithOp, CmpOp, Expr};
use crate::ops::{self, AggState, GroupTable};
use crate::plan::{AggCall, JoinKind, LogicalPlan, SortKey};
use crate::schema::{DataType, Schema};
use crate::value::{Row, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// The typed data lane of a [`Column`]. Slots where the validity mask is
/// false hold an arbitrary default and must not be read.
#[derive(Clone, Debug)]
pub enum ColumnData {
    Bool(Vec<bool>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    /// Fixed-point hundredths, like [`Value::Decimal`].
    Decimal(Vec<i64>),
    /// Days since the epoch, like [`Value::Date`].
    Date(Vec<i32>),
    Str(Vec<Arc<str>>),
    /// Escape lane for mixed-type columns (possible after CASE or joins of
    /// heterogeneous sources); keeps the batch pipeline total.
    Val(Vec<Value>),
}

/// One typed column vector plus its validity (non-null) mask.
#[derive(Clone, Debug)]
pub struct Column {
    data: ColumnData,
    /// `valid[i]` is false where row `i` is NULL.
    valid: Vec<bool>,
}

fn lane_for(ty: DataType, n: usize) -> ColumnData {
    match ty {
        DataType::Bool => ColumnData::Bool(Vec::with_capacity(n)),
        DataType::I64 => ColumnData::I64(Vec::with_capacity(n)),
        DataType::F64 => ColumnData::F64(Vec::with_capacity(n)),
        DataType::Decimal => ColumnData::Decimal(Vec::with_capacity(n)),
        DataType::Date => ColumnData::Date(Vec::with_capacity(n)),
        DataType::Str => ColumnData::Str(Vec::with_capacity(n)),
    }
}

fn lane_of(v: &Value) -> Option<DataType> {
    match v {
        Value::Null => None,
        Value::Bool(_) => Some(DataType::Bool),
        Value::I64(_) => Some(DataType::I64),
        Value::F64(_) => Some(DataType::F64),
        Value::Decimal(_) => Some(DataType::Decimal),
        Value::Date(_) => Some(DataType::Date),
        Value::Str(_) => Some(DataType::Str),
    }
}

impl Column {
    /// Build a typed column from values known to inhabit `ty` (NULLs allowed).
    pub fn from_values_typed(vals: &[Value], ty: DataType) -> Column {
        let mut data = lane_for(ty, vals.len());
        let mut valid = Vec::with_capacity(vals.len());
        for v in vals {
            valid.push(!v.is_null());
            push_value(&mut data, v, ty);
        }
        Column { data, valid }
    }

    /// Build a column inferring the lane type from the first non-null
    /// value; falls back to the generic [`ColumnData::Val`] lane when the
    /// column mixes types.
    pub fn from_values(vals: &[Value]) -> Column {
        let ty = vals.iter().find_map(lane_of);
        let uniform = ty.is_some_and(|t| vals.iter().all(|v| lane_of(v).is_none_or(|l| l == t)));
        match (ty, uniform) {
            (Some(t), true) => Column::from_values_typed(vals, t),
            _ => Column {
                valid: vals.iter().map(|v| !v.is_null()).collect(),
                data: ColumnData::Val(vals.to_vec()),
            },
        }
    }

    /// A column repeating one value `len` times (literal broadcast).
    pub fn broadcast(v: &Value, len: usize) -> Column {
        Column::from_values(&vec![v.clone(); len])
    }

    pub fn len(&self) -> usize {
        self.valid.len()
    }

    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    /// Count of NULL slots.
    pub fn n_nulls(&self) -> usize {
        self.valid.iter().filter(|v| !**v).count()
    }

    /// Materialize slot `i` as a [`Value`] (NULL where invalid).
    pub fn value_at(&self, i: usize) -> Value {
        if !self.valid[i] {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::I64(v) => Value::I64(v[i]),
            ColumnData::F64(v) => Value::F64(v[i]),
            ColumnData::Decimal(v) => Value::Decimal(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Val(v) => v[i].clone(),
        }
    }

    /// Select `idx` slots in order (the vectorized selection primitive).
    pub fn gather(&self, idx: &[usize]) -> Column {
        Column::from_values(&idx.iter().map(|&i| self.value_at(i)).collect::<Vec<_>>())
    }

    /// Like [`Column::gather`] but `None` produces NULL (outer-join padding).
    pub fn gather_opt(&self, idx: &[Option<usize>]) -> Column {
        Column::from_values(
            &idx.iter()
                .map(|i| i.map(|i| self.value_at(i)).unwrap_or(Value::Null))
                .collect::<Vec<_>>(),
        )
    }

    fn as_bool(&self, i: usize) -> Option<bool> {
        if !self.valid[i] {
            return None;
        }
        match &self.data {
            ColumnData::Bool(v) => Some(v[i]),
            other => panic!("boolean lane required, got {other:?}"),
        }
    }
}

fn push_value(data: &mut ColumnData, v: &Value, ty: DataType) {
    match (data, v) {
        (ColumnData::Bool(d), Value::Bool(b)) => d.push(*b),
        (ColumnData::I64(d), Value::I64(x)) => d.push(*x),
        (ColumnData::F64(d), Value::F64(x)) => d.push(*x),
        (ColumnData::Decimal(d), Value::Decimal(x)) => d.push(*x),
        (ColumnData::Date(d), Value::Date(x)) => d.push(*x),
        (ColumnData::Str(d), Value::Str(s)) => d.push(s.clone()),
        (ColumnData::Bool(d), Value::Null) => d.push(false),
        (ColumnData::I64(d), Value::Null) => d.push(0),
        (ColumnData::F64(d), Value::Null) => d.push(0.0),
        (ColumnData::Decimal(d), Value::Null) => d.push(0),
        (ColumnData::Date(d), Value::Null) => d.push(0),
        (ColumnData::Str(d), Value::Null) => d.push(Arc::from("")),
        (ColumnData::Val(d), v) => d.push(v.clone()),
        (_, v) => panic!("value {v:?} does not inhabit column type {ty:?}"),
    }
}

/// A batch of rows in columnar form. `len` is the row count; every column
/// has exactly `len` slots.
#[derive(Clone, Debug)]
pub struct ColumnBatch {
    pub columns: Vec<Column>,
    pub len: usize,
}

impl ColumnBatch {
    /// Row → column shim using the schema's declared types.
    pub fn from_rows(rows: &[Row], schema: &Schema) -> ColumnBatch {
        let columns = (0..schema.len())
            .map(|c| {
                let vals: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
                Column::from_values_typed(&vals, schema.field(c).ty)
            })
            .collect();
        ColumnBatch {
            columns,
            len: rows.len(),
        }
    }

    /// Row → column shim for intermediate results without a schema; lane
    /// types are inferred per column.
    pub fn from_rows_inferred(rows: &[Row], width: usize) -> ColumnBatch {
        let columns = (0..width)
            .map(|c| Column::from_values(&rows.iter().map(|r| r[c].clone()).collect::<Vec<_>>()))
            .collect();
        ColumnBatch {
            columns,
            len: rows.len(),
        }
    }

    /// Column → row shim back to the materialized-row world.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len)
            .map(|i| self.columns.iter().map(|c| c.value_at(i)).collect())
            .collect()
    }

    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Select rows by index across every column.
    pub fn gather(&self, idx: &[usize]) -> ColumnBatch {
        ColumnBatch {
            columns: self.columns.iter().map(|c| c.gather(idx)).collect(),
            len: idx.len(),
        }
    }
}

// ---- vectorized expression evaluation --------------------------------------

/// Evaluate an expression over a whole batch, producing one output column.
/// Semantics match [`Expr::eval`] row by row (SQL three-valued logic, f64
/// arithmetic promotion, date ± days); CASE evaluates all branches eagerly.
pub fn eval(expr: &Expr, batch: &ColumnBatch) -> Column {
    let n = batch.len;
    match expr {
        Expr::Col(i) => batch.columns[*i].clone(),
        Expr::Lit(v) => Column::broadcast(v, n),
        Expr::Cmp(op, a, b) => cmp_columns(*op, &eval(a, batch), &eval(b, batch)),
        Expr::And(parts) => fold_logic(parts, batch, true),
        Expr::Or(parts) => fold_logic(parts, batch, false),
        Expr::Not(e) => {
            let c = eval(e, batch);
            bool_column((0..n).map(|i| c.as_bool(i).map(|b| !b)))
        }
        Expr::Arith(op, a, b) => arith_columns(*op, &eval(a, batch), &eval(b, batch)),
        Expr::Like(e, pat) => {
            let c = eval(e, batch);
            bool_column((0..n).map(|i| str_at(&c, i, "LIKE").map(|s| like_match(s, pat))))
        }
        Expr::NotLike(e, pat) => {
            let c = eval(e, batch);
            bool_column((0..n).map(|i| str_at(&c, i, "NOT LIKE").map(|s| !like_match(s, pat))))
        }
        Expr::InList(e, list) => in_list_column(&eval(e, batch), list),
        Expr::Between(e, lo, hi) => {
            let c = eval(e, batch);
            bool_column((0..n).map(|i| {
                let v = c.value_at(i);
                if v.is_null() {
                    None
                } else {
                    Some(&v >= lo && &v <= hi)
                }
            }))
        }
        Expr::Case { whens, otherwise } => {
            let conds: Vec<Column> = whens.iter().map(|(c, _)| eval(c, batch)).collect();
            let outs: Vec<Column> = whens.iter().map(|(_, o)| eval(o, batch)).collect();
            let other = eval(otherwise, batch);
            let vals: Vec<Value> = (0..n)
                .map(|i| {
                    for (c, o) in conds.iter().zip(&outs) {
                        if c.as_bool(i) == Some(true) {
                            return o.value_at(i);
                        }
                    }
                    other.value_at(i)
                })
                .collect();
            Column::from_values(&vals)
        }
        Expr::Substr(e, start, len) => {
            let c = eval(e, batch);
            let vals: Vec<Value> = (0..n)
                .map(|i| match str_at(&c, i, "SUBSTRING") {
                    None => Value::Null,
                    Some(s) => {
                        let out: String =
                            s.chars().skip(start.saturating_sub(1)).take(*len).collect();
                        Value::str(out)
                    }
                })
                .collect();
            Column::from_values(&vals)
        }
        Expr::ExtractYear(e) => {
            let c = eval(e, batch);
            let vals: Vec<Value> = (0..n)
                .map(|i| match c.value_at(i) {
                    Value::Date(d) => Value::I64(date::year(d) as i64),
                    Value::Null => Value::Null,
                    other => panic!("EXTRACT YEAR over non-date {other:?}"),
                })
                .collect();
            Column::from_values(&vals)
        }
        Expr::IsNull(e) => {
            let c = eval(e, batch);
            bool_column((0..n).map(|i| Some(!c.valid[i])))
        }
    }
}

/// Build a boolean column from three-valued slots (`None` = NULL).
fn bool_column(slots: impl Iterator<Item = Option<bool>>) -> Column {
    let mut data = Vec::new();
    let mut valid = Vec::new();
    for s in slots {
        valid.push(s.is_some());
        data.push(s.unwrap_or(false));
    }
    Column {
        data: ColumnData::Bool(data),
        valid,
    }
}

fn str_at<'a>(c: &'a Column, i: usize, what: &str) -> Option<&'a str> {
    if !c.valid[i] {
        return None;
    }
    match &c.data {
        ColumnData::Str(v) => Some(&v[i]),
        ColumnData::Val(v) => match &v[i] {
            Value::Str(s) => Some(s),
            other => panic!("{what} over non-string {other:?}"),
        },
        other => panic!("{what} over non-string lane {other:?}"),
    }
}

fn cmp_to_bool(op: CmpOp, c: Ordering) -> bool {
    match op {
        CmpOp::Eq => c.is_eq(),
        CmpOp::Ne => c.is_ne(),
        CmpOp::Lt => c.is_lt(),
        CmpOp::Le => c.is_le(),
        CmpOp::Gt => c.is_gt(),
        CmpOp::Ge => c.is_ge(),
    }
}

fn cmp_columns(op: CmpOp, a: &Column, b: &Column) -> Column {
    let n = a.len();
    // Typed fast paths: compare primitive lanes without materializing
    // `Value`s. The orderings are the ones `Value::cmp` uses for the same
    // variant pair, so results are identical to the row interpreter.
    macro_rules! fast {
        ($x:expr, $y:expr, $cmp:expr) => {
            bool_column((0..n).map(|i| {
                if a.valid[i] && b.valid[i] {
                    Some(cmp_to_bool(op, $cmp(&$x[i], &$y[i])))
                } else {
                    None
                }
            }))
        };
    }
    match (&a.data, &b.data) {
        (ColumnData::I64(x), ColumnData::I64(y)) => fast!(x, y, |p: &i64, q: &i64| p.cmp(q)),
        (ColumnData::Date(x), ColumnData::Date(y)) => fast!(x, y, |p: &i32, q: &i32| p.cmp(q)),
        (ColumnData::Decimal(x), ColumnData::Decimal(y)) => {
            fast!(x, y, |p: &i64, q: &i64| p.cmp(q))
        }
        (ColumnData::F64(x), ColumnData::F64(y)) => fast!(x, y, |p: &f64, q: &f64| p.total_cmp(q)),
        (ColumnData::Str(x), ColumnData::Str(y)) => {
            fast!(x, y, |p: &Arc<str>, q: &Arc<str>| p
                .as_ref()
                .cmp(q.as_ref()))
        }
        _ => bool_column((0..n).map(|i| {
            let (va, vb) = (a.value_at(i), b.value_at(i));
            if va.is_null() || vb.is_null() {
                None
            } else {
                Some(cmp_to_bool(op, va.cmp(&vb)))
            }
        })),
    }
}

/// Three-valued AND (`conj = true`) / OR (`conj = false`) over the parts.
fn fold_logic(parts: &[Expr], batch: &ColumnBatch, conj: bool) -> Column {
    let cols: Vec<Column> = parts.iter().map(|p| eval(p, batch)).collect();
    bool_column((0..batch.len).map(|i| {
        let mut saw_null = false;
        for c in &cols {
            match c.as_bool(i) {
                Some(b) if b != conj => return Some(!conj),
                Some(_) => {}
                None => saw_null = true,
            }
        }
        if saw_null {
            None
        } else {
            Some(conj)
        }
    }))
}

fn arith_columns(op: ArithOp, a: &Column, b: &Column) -> Column {
    let n = a.len();
    // f64 fast path: both lanes numeric (and not the date ± days special
    // case), evaluated exactly as the row interpreter's promotion does.
    let f64_of = |d: &ColumnData, i: usize| -> Option<f64> {
        match d {
            ColumnData::I64(v) => Some(v[i] as f64),
            ColumnData::F64(v) => Some(v[i]),
            ColumnData::Decimal(v) => Some(v[i] as f64 / 100.0),
            _ => None,
        }
    };
    let numeric = |d: &ColumnData| {
        matches!(
            d,
            ColumnData::I64(_) | ColumnData::F64(_) | ColumnData::Decimal(_)
        )
    };
    if numeric(&a.data) && numeric(&b.data) {
        let mut out = Vec::with_capacity(n);
        let mut valid = Vec::with_capacity(n);
        for i in 0..n {
            if a.valid[i] && b.valid[i] {
                let (x, y) = (
                    f64_of(&a.data, i).expect("numeric lane"),
                    f64_of(&b.data, i).expect("numeric lane"),
                );
                out.push(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                });
                valid.push(true);
            } else {
                out.push(0.0);
                valid.push(false);
            }
        }
        return Column {
            data: ColumnData::F64(out),
            valid,
        };
    }
    // Generic path, mirroring `Expr::eval`'s Arith arm (date ± days).
    let vals: Vec<Value> = (0..n)
        .map(|i| {
            let (va, vb) = (a.value_at(i), b.value_at(i));
            if va.is_null() || vb.is_null() {
                return Value::Null;
            }
            if let (Value::Date(d), Some(days)) = (&va, vb.as_i64()) {
                match op {
                    ArithOp::Add => return Value::Date(d + days as i32),
                    ArithOp::Sub => return Value::Date(d - days as i32),
                    _ => {}
                }
            }
            let (x, y) = (
                va.as_f64().unwrap_or_else(|| panic!("non-numeric {va:?}")),
                vb.as_f64().unwrap_or_else(|| panic!("non-numeric {vb:?}")),
            );
            Value::F64(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
            })
        })
        .collect();
    Column::from_values(&vals)
}

fn in_list_column(c: &Column, list: &[Value]) -> Column {
    let n = c.len();
    // Fast path: i64 lane against an all-i64 list (no cross-type numeric
    // equality to worry about).
    if let ColumnData::I64(v) = &c.data {
        let ints: Option<Vec<i64>> = list
            .iter()
            .map(|x| match x {
                Value::I64(i) => Some(*i),
                _ => None,
            })
            .collect();
        if let Some(ints) = ints {
            return bool_column((0..n).map(|i| {
                if c.valid[i] {
                    Some(ints.contains(&v[i]))
                } else {
                    None
                }
            }));
        }
    }
    bool_column((0..n).map(|i| {
        let v = c.value_at(i);
        if v.is_null() {
            None
        } else {
            Some(list.contains(&v))
        }
    }))
}

// ---- batch operators --------------------------------------------------------

/// WHERE over a batch: keep rows whose predicate is true (NULL = drop).
pub fn filter(batch: &ColumnBatch, pred: &Expr) -> ColumnBatch {
    let mask = eval(pred, batch);
    let sel: Vec<usize> = (0..batch.len)
        .filter(|&i| mask.as_bool(i) == Some(true))
        .collect();
    batch.gather(&sel)
}

/// SELECT list over a batch: each expression becomes one output column.
pub fn project(batch: &ColumnBatch, exprs: &[(Expr, String)]) -> ColumnBatch {
    ColumnBatch {
        columns: exprs.iter().map(|(e, _)| eval(e, batch)).collect(),
        len: batch.len,
    }
}

/// Hash join over batches, answer-identical to [`ops::hash_join`]: build
/// on `right`, probe with `left` in order, NULL keys never match, and the
/// residual sees the concatenated `[left ++ right]` candidate. The
/// vectorized twist: candidate pairs are collected first and the residual
/// is evaluated in one batch pass over the gathered pair columns.
pub fn hash_join(
    left: &ColumnBatch,
    right: &ColumnBatch,
    on: &[(usize, usize)],
    kind: JoinKind,
    residual: Option<&Expr>,
    right_width: usize,
) -> ColumnBatch {
    // Candidate (left, right) index pairs in probe order.
    let mut cand: Vec<(usize, usize)> = Vec::new();
    // Per left row: range into `cand`.
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(left.len);
    if on.is_empty() {
        for li in 0..left.len {
            let start = cand.len();
            cand.extend((0..right.len).map(|ri| (li, ri)));
            ranges.push((start, cand.len()));
        }
    } else {
        let lcols: Vec<&Column> = on.iter().map(|&(l, _)| &left.columns[l]).collect();
        let rcols: Vec<&Column> = on.iter().map(|&(_, r)| &right.columns[r]).collect();
        // simlint: allow(no-unordered-iter) — build side is probe-only (`get`), output order is driven by the left probe order
        type ProbeTable = std::collections::HashMap<Vec<Value>, Vec<usize>>;
        let mut table = ProbeTable::new();
        for ri in 0..right.len {
            let k: Vec<Value> = rcols.iter().map(|c| c.value_at(ri)).collect();
            if k.iter().any(Value::is_null) {
                continue;
            }
            table.entry(k).or_default().push(ri);
        }
        for li in 0..left.len {
            let start = cand.len();
            let k: Vec<Value> = lcols.iter().map(|c| c.value_at(li)).collect();
            if !k.iter().any(Value::is_null) {
                if let Some(idxs) = table.get(&k) {
                    cand.extend(idxs.iter().map(|&ri| (li, ri)));
                }
            }
            ranges.push((start, cand.len()));
        }
    }

    // One vectorized residual pass over the gathered candidate pairs.
    let ok: Vec<bool> = match residual {
        None => vec![true; cand.len()],
        Some(pred) => {
            let lidx: Vec<usize> = cand.iter().map(|&(l, _)| l).collect();
            let ridx: Vec<usize> = cand.iter().map(|&(_, r)| r).collect();
            let mut cols: Vec<Column> = left.columns.iter().map(|c| c.gather(&lidx)).collect();
            cols.extend(right.columns.iter().map(|c| c.gather(&ridx)));
            let pair_batch = ColumnBatch {
                columns: cols,
                len: cand.len(),
            };
            let mask = eval(pred, &pair_batch);
            (0..cand.len())
                .map(|i| mask.as_bool(i) == Some(true))
                .collect()
        }
    };

    // Apply join-kind semantics per left row, in probe order.
    let mut out_l: Vec<usize> = Vec::new();
    let mut out_r: Vec<Option<usize>> = Vec::new();
    for (li, &(start, end)) in ranges.iter().enumerate() {
        let mut any = false;
        for ci in start..end {
            if !ok[ci] {
                continue;
            }
            any = true;
            match kind {
                JoinKind::Inner | JoinKind::Left => {
                    out_l.push(li);
                    out_r.push(Some(cand[ci].1));
                }
                JoinKind::LeftSemi => {
                    out_l.push(li);
                    break;
                }
                JoinKind::LeftAnti => break,
            }
        }
        if !any {
            match kind {
                JoinKind::Left => {
                    out_l.push(li);
                    out_r.push(None);
                }
                JoinKind::LeftAnti => out_l.push(li),
                _ => {}
            }
        }
    }

    let mut columns: Vec<Column> = left.columns.iter().map(|c| c.gather(&out_l)).collect();
    if matches!(kind, JoinKind::Inner | JoinKind::Left) {
        columns.extend(right.columns.iter().map(|c| c.gather_opt(&out_r)));
        debug_assert_eq!(right.columns.len(), right_width);
    }
    ColumnBatch {
        len: out_l.len(),
        columns,
    }
}

/// Partial aggregation over a batch into the shared [`GroupTable`]: group
/// keys and aggregate arguments are evaluated as whole columns, then the
/// states update in row order — the same accumulation order as
/// [`ops::aggregate_partial`], so float results are bit-identical.
pub fn aggregate_partial(
    batch: &ColumnBatch,
    group_by: &[(Expr, String)],
    aggs: &[AggCall],
) -> GroupTable {
    let key_cols: Vec<Column> = group_by.iter().map(|(e, _)| eval(e, batch)).collect();
    let arg_cols: Vec<Option<Column>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| eval(e, batch)))
        .collect();
    let mut table = GroupTable::new();
    for i in 0..batch.len {
        let key: Vec<Value> = key_cols.iter().map(|c| c.value_at(i)).collect();
        let states = table.entry(key).or_insert_with(|| {
            aggs.iter()
                .map(|a| AggState::new(a.func))
                .collect::<Vec<_>>()
        });
        for (st, arg) in states.iter_mut().zip(&arg_cols) {
            match arg {
                Some(c) => st.update(c.value_at(i)),
                None => st.update_star(),
            }
        }
    }
    if group_by.is_empty() && table.is_empty() {
        table.insert(
            Vec::new(),
            aggs.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }
    table
}

/// One-shot batch aggregate (partial + finish).
pub fn hash_aggregate(
    batch: &ColumnBatch,
    group_by: &[(Expr, String)],
    aggs: &[AggCall],
) -> Vec<Row> {
    ops::aggregate_finish(aggregate_partial(batch, group_by, aggs))
}

/// ORDER BY over a batch: stable argsort on vectorized key columns, then
/// one gather — the permutation [`ops::sort`] produces.
pub fn sort(batch: &ColumnBatch, keys: &[SortKey]) -> ColumnBatch {
    let key_cols: Vec<Column> = keys.iter().map(|k| eval(&k.expr, batch)).collect();
    let mut idx: Vec<usize> = (0..batch.len).collect();
    idx.sort_by(|&a, &b| {
        for (k, c) in keys.iter().zip(&key_cols) {
            let ord = c.value_at(a).cmp(&c.value_at(b));
            let ord = if k.desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        Ordering::Equal
    });
    batch.gather(&idx)
}

/// LIMIT over a batch.
pub fn limit(batch: &ColumnBatch, n: usize) -> ColumnBatch {
    if n >= batch.len {
        return batch.clone();
    }
    batch.gather(&(0..n).collect::<Vec<_>>())
}

// ---- batch reference executor ----------------------------------------------

/// Execute a plan with the vectorized operators end to end, returning
/// `(schema, rows)` — the batch counterpart of [`crate::execute`], used by
/// the answer-equivalence tests.
pub fn execute_batch(plan: &LogicalPlan, catalog: &Catalog) -> (Schema, Vec<Row>) {
    let schema = plan.schema(catalog);
    let batch = run(plan, catalog);
    (schema, batch.to_rows())
}

fn run(plan: &LogicalPlan, catalog: &Catalog) -> ColumnBatch {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog.get(table);
            ColumnBatch::from_rows(&t.rows, &t.schema)
        }
        LogicalPlan::Filter { input, pred } => filter(&run(input, catalog), pred),
        LogicalPlan::Project { input, exprs } => project(&run(input, catalog), exprs),
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
            ..
        } => {
            let l = run(left, catalog);
            let r = run(right, catalog);
            let right_width = right.schema(catalog).len();
            hash_join(&l, &r, on, *kind, residual.as_ref(), right_width)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rows = hash_aggregate(&run(input, catalog), group_by, aggs);
            ColumnBatch::from_rows_inferred(&rows, group_by.len() + aggs.len())
        }
        LogicalPlan::Sort { input, keys } => sort(&run(input, catalog), keys),
        LogicalPlan::Limit { input, n } => limit(&run(input, catalog), *n),
        LogicalPlan::Materialize { input, .. } => run(input, catalog),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{and, col, lit_i64, lit_str, or};
    use crate::plan::AggFunc;

    fn sample() -> (Vec<Row>, Schema) {
        let schema = Schema::of(&[
            ("k", DataType::I64),
            ("s", DataType::Str),
            ("d", DataType::Decimal),
        ]);
        let rows = vec![
            vec![Value::I64(1), Value::str("a"), Value::Decimal(100)],
            vec![Value::I64(2), Value::Null, Value::Decimal(250)],
            vec![Value::Null, Value::str("c"), Value::Decimal(50)],
            vec![Value::I64(2), Value::str("d"), Value::Null],
        ];
        (rows, schema)
    }

    #[test]
    fn row_shims_round_trip() {
        let (rows, schema) = sample();
        let b = ColumnBatch::from_rows(&rows, &schema);
        assert_eq!(b.len, 4);
        assert_eq!(b.to_rows(), rows);
        // Inferred lanes round-trip too (including the all-seen-types case).
        let b2 = ColumnBatch::from_rows_inferred(&rows, 3);
        assert_eq!(b2.to_rows(), rows);
    }

    #[test]
    fn filter_matches_row_kernel_incl_null_semantics() {
        let (rows, schema) = sample();
        let b = ColumnBatch::from_rows(&rows, &schema);
        for pred in [
            col(0).ge(lit_i64(2)),
            and(vec![col(0).ge(lit_i64(1)), col(1).eq(lit_str("a"))]),
            or(vec![col(1).eq(lit_str("c")), col(2).gt(lit_i64(0))]),
            Expr::IsNull(Box::new(col(2))),
            col(0).in_list(vec![Value::I64(2), Value::I64(7)]),
            col(2).between(Value::Decimal(60), Value::Decimal(260)),
            col(0).ge(lit_i64(2)).negate(),
        ] {
            let want = ops::filter(rows.clone(), &pred);
            let got = filter(&b, &pred).to_rows();
            assert_eq!(got, want, "pred {pred:?}");
        }
    }

    #[test]
    fn project_and_arith_match_row_kernel() {
        let (rows, schema) = sample();
        let b = ColumnBatch::from_rows(&rows, &schema);
        let exprs = vec![
            (col(2).mul(lit_i64(2)), "x".to_string()),
            (col(0).add(col(2)), "y".to_string()),
            (
                Expr::Case {
                    whens: vec![(col(0).eq(lit_i64(2)), lit_str("two"))],
                    otherwise: Box::new(lit_str("other")),
                },
                "c".to_string(),
            ),
        ];
        assert_eq!(project(&b, &exprs).to_rows(), ops::project(&rows, &exprs));
    }

    #[test]
    fn joins_match_row_kernel_for_every_kind() {
        let (rows, schema) = sample();
        let right_rows = vec![
            vec![Value::I64(2), Value::str("r1")],
            vec![Value::I64(2), Value::str("r2")],
            vec![Value::Null, Value::str("rn")],
            vec![Value::I64(9), Value::str("r9")],
        ];
        let rschema = Schema::of(&[("rk", DataType::I64), ("rv", DataType::Str)]);
        let l = ColumnBatch::from_rows(&rows, &schema);
        let r = ColumnBatch::from_rows(&right_rows, &rschema);
        let residual = col(4).ne(lit_str("r2"));
        for kind in [
            JoinKind::Inner,
            JoinKind::Left,
            JoinKind::LeftSemi,
            JoinKind::LeftAnti,
        ] {
            for res in [None, Some(&residual)] {
                let want = ops::hash_join(&rows, &right_rows, &[(0, 0)], kind, res, 2);
                let got = hash_join(&l, &r, &[(0, 0)], kind, res, 2).to_rows();
                assert_eq!(got, want, "kind {kind:?} residual {}", res.is_some());
            }
        }
        // Cross join (empty `on`) with a residual.
        let cross = col(0).eq(col(3));
        let want = ops::hash_join(&rows, &right_rows, &[], JoinKind::Inner, Some(&cross), 2);
        let got = hash_join(&l, &r, &[], JoinKind::Inner, Some(&cross), 2).to_rows();
        assert_eq!(got, want);
    }

    #[test]
    fn aggregate_matches_row_kernel_bit_for_bit() {
        let (rows, schema) = sample();
        let b = ColumnBatch::from_rows(&rows, &schema);
        let group = vec![(col(0), "k".to_string())];
        let aggs = vec![
            AggCall::new(AggFunc::Sum, Some(col(2)), "s"),
            AggCall::new(AggFunc::Count, Some(col(1)), "c"),
            AggCall::new(AggFunc::Avg, Some(col(2)), "a"),
            AggCall::new(AggFunc::Min, Some(col(1)), "mn"),
            AggCall::new(AggFunc::Max, Some(col(2)), "mx"),
            AggCall::new(AggFunc::Count, None, "n"),
        ];
        assert_eq!(
            hash_aggregate(&b, &group, &aggs),
            ops::hash_aggregate(&rows, &group, &aggs)
        );
        // Global aggregate over an empty batch still yields one group.
        let empty = ColumnBatch::from_rows(&[], &schema);
        assert_eq!(
            hash_aggregate(&empty, &[], &aggs),
            ops::hash_aggregate(&[], &[], &aggs)
        );
    }

    #[test]
    fn sort_and_limit_match_row_kernels() {
        let (rows, schema) = sample();
        let b = ColumnBatch::from_rows(&rows, &schema);
        let keys = vec![SortKey::desc(col(0)), SortKey::asc(col(1))];
        assert_eq!(sort(&b, &keys).to_rows(), ops::sort(rows.clone(), &keys));
        assert_eq!(limit(&b, 2).to_rows(), ops::limit(rows, 2));
    }
}
