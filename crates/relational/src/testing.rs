//! Helpers for cross-engine answer-equality tests: canonical row ordering
//! and tolerant comparison (distributed engines sum floats in different
//! orders, so exact equality of `F64` cells is too strict).

use crate::value::{Row, Value};

/// Relative tolerance used when comparing float cells across engines.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Sort rows into a canonical order (total order on `Value`).
pub fn normalize(rows: &mut [Row]) {
    rows.sort();
}

/// Compare two cells: floats within relative tolerance, everything else
/// exactly. Numeric representations that compare equal under `Value`'s
/// total order are equal here too.
pub fn value_approx_eq(a: &Value, b: &Value, tol: f64) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            if x == y {
                return true;
            }
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= tol * scale
        }
        _ => a == b,
    }
}

/// Compare two result sets ignoring row order.
pub fn rows_approx_eq(a: &[Row], b: &[Row], tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a: Vec<Row> = a.to_vec();
    let mut b: Vec<Row> = b.to_vec();
    normalize(&mut a);
    normalize(&mut b);
    a.iter().zip(&b).all(|(ra, rb)| {
        ra.len() == rb.len()
            && ra
                .iter()
                .zip(rb)
                .all(|(va, vb)| value_approx_eq(va, vb, tol))
    })
}

/// Compare two result sets *respecting* row order (for ORDER BY outputs).
pub fn rows_approx_eq_ordered(a: &[Row], b: &[Row], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra
                    .iter()
                    .zip(rb)
                    .all(|(va, vb)| value_approx_eq(va, vb, tol))
        })
}

/// Panic with a readable diff if the result sets differ (unordered).
pub fn assert_rows_match(label: &str, got: &[Row], want: &[Row]) {
    if !rows_approx_eq(got, want, DEFAULT_TOLERANCE) {
        let render = |rows: &[Row]| -> String {
            let mut rows = rows.to_vec();
            normalize(&mut rows);
            rows.iter()
                .take(12)
                .map(|r| {
                    r.iter()
                        .map(Value::to_string)
                        .collect::<Vec<_>>()
                        .join(" | ")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        panic!(
            "{label}: result mismatch\n-- got ({} rows) --\n{}\n-- want ({} rows) --\n{}",
            got.len(),
            render(got),
            want.len(),
            render(want)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_tolerance() {
        let a = vec![vec![Value::F64(1.0), Value::str("x")]];
        let b = vec![vec![Value::F64(1.0 + 1e-12), Value::str("x")]];
        assert!(rows_approx_eq(&a, &b, 1e-9));
        let c = vec![vec![Value::F64(1.01), Value::str("x")]];
        assert!(!rows_approx_eq(&a, &c, 1e-9));
    }

    #[test]
    fn order_insensitive() {
        let a = vec![vec![Value::I64(1)], vec![Value::I64(2)]];
        let b = vec![vec![Value::I64(2)], vec![Value::I64(1)]];
        assert!(rows_approx_eq(&a, &b, 1e-9));
        assert!(!rows_approx_eq_ordered(&a, &b, 1e-9));
    }

    #[test]
    fn mixed_numeric_reprs_compare_equal() {
        let a = vec![vec![Value::I64(3)]];
        let b = vec![vec![Value::Decimal(300)]];
        assert!(rows_approx_eq(&a, &b, 1e-9));
    }

    #[test]
    fn length_mismatch_detected() {
        let a = vec![vec![Value::I64(1)]];
        assert!(!rows_approx_eq(&a, &[], 1e-9));
    }
}
