//! Civil date arithmetic on "days since 1970-01-01" (proleptic Gregorian).
//!
//! Uses Howard Hinnant's `days_from_civil` / `civil_from_days` algorithms.
//! TPC-H needs: date literals, `+/- interval day`, `+ interval month/year`
//! (Q4, Q5, Q10, Q20 use month/year arithmetic) and `extract(year ...)`.

/// Days since 1970-01-01 for a civil date.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    debug_assert!((1..=12).contains(&m) && (1..=31).contains(&d));
    let y = y - (m <= 2) as i32;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Civil date (year, month, day) from days since 1970-01-01.
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (y + (m <= 2) as i32, m, d)
}

/// Shorthand date constructor.
pub fn date(y: i32, m: u32, d: u32) -> i32 {
    days_from_civil(y, m, d)
}

/// Extract the year.
pub fn year(days: i32) -> i32 {
    civil_from_days(days).0
}

/// Extract the month (1-12).
pub fn month(days: i32) -> u32 {
    civil_from_days(days).1
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("bad month {m}"),
    }
}

/// SQL `date + interval 'n' month`: clamps the day to the target month's
/// length (1999-01-31 + 1 month = 1999-02-28).
pub fn add_months(days: i32, n: i32) -> i32 {
    let (y, m, d) = civil_from_days(days);
    let total = y * 12 + (m as i32 - 1) + n;
    let (ny, nm) = (total.div_euclid(12), total.rem_euclid(12) as u32 + 1);
    let nd = d.min(days_in_month(ny, nm));
    days_from_civil(ny, nm, nd)
}

/// SQL `date + interval 'n' year`.
pub fn add_years(days: i32, n: i32) -> i32 {
    add_months(days, n * 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn round_trip_many_days() {
        for z in (-200_000..200_000).step_by(37) {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn tpch_interval_arithmetic() {
        // Q1: date '1998-12-01' - interval '90' day
        let d = date(1998, 12, 1) - 90;
        assert_eq!(civil_from_days(d), (1998, 9, 2));
        // Q4: date '1993-07-01' + interval '3' month
        assert_eq!(
            civil_from_days(add_months(date(1993, 7, 1), 3)),
            (1993, 10, 1)
        );
        // Q5: date '1994-01-01' + interval '1' year
        assert_eq!(
            civil_from_days(add_years(date(1994, 1, 1), 1)),
            (1995, 1, 1)
        );
    }

    #[test]
    fn month_end_clamping() {
        assert_eq!(
            civil_from_days(add_months(date(1999, 1, 31), 1)),
            (1999, 2, 28)
        );
        assert_eq!(
            civil_from_days(add_months(date(2000, 1, 31), 1)),
            (2000, 2, 29)
        );
    }

    #[test]
    fn leap_years() {
        assert_eq!(days_in_month(1996, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
    }

    #[test]
    fn extracts() {
        let d = date(1995, 6, 17);
        assert_eq!(year(d), 1995);
        assert_eq!(month(d), 6);
    }
}
