//! The dynamic value type shared by all engines.
//!
//! `Value` implements a *total* order (NULL sorts first, floats via
//! `total_cmp`) so it can serve as a grouping / sort / join key everywhere.
//! Decimals are fixed-point with two fractional digits (TPC-H money and
//! percentage columns); arithmetic that would lose precision is promoted to
//! `F64`, matching how both engines in the paper compute aggregate
//! expressions like `sum(l_extendedprice * (1 - l_discount))`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single column value.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    F64(f64),
    /// Fixed-point decimal with 2 fractional digits, stored as hundredths
    /// (`Decimal(12345)` is `123.45`).
    Decimal(i64),
    /// Days since 1970-01-01 (proleptic Gregorian).
    Date(i32),
    Str(Arc<str>),
}

/// A materialized row.
pub type Row = Vec<Value>;

impl Value {
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a decimal from a float (rounded to hundredths).
    pub fn decimal(v: f64) -> Value {
        Value::Decimal((v * 100.0).round() as i64)
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view for arithmetic (decimals as their real value).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Decimal(v) => Some(*v as f64 / 100.0),
            Value::Date(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Null => None,
            _ => None,
        }
    }

    /// Approximate serialized width in bytes; drives the I/O volume model.
    pub fn byte_width(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::I64(_) => 8,
            Value::F64(_) => 8,
            Value::Decimal(_) => 8,
            Value::Date(_) => 4,
            Value::Str(s) => 4 + s.len() as u64,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::F64(_) | Value::Decimal(_) => 2,
            Value::Date(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

/// Approximate serialized width of a whole row.
pub fn row_bytes(row: &[Value]) -> u64 {
    row.iter().map(Value::byte_width).sum()
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (F64(a), F64(b)) => a.total_cmp(b),
            // Mixed numerics compare by real value (I64 vs Decimal vs F64).
            (a, b) if a.rank() == 2 && b.rank() == 2 => {
                let (x, y) = (
                    a.as_f64().expect("rank 2 values are numeric"),
                    b.as_f64().expect("rank 2 values are numeric"),
                );
                x.total_cmp(&y)
            }
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // All numerics hash through their f64 bits so that values that
            // compare equal across representations hash identically.
            Value::I64(_) | Value::F64(_) | Value::Decimal(_) => {
                2u8.hash(state);
                let f = self
                    .as_f64()
                    .expect("numeric variants always have an f64 value");
                // Normalize -0.0 to 0.0 for hash/eq coherence under total_cmp?
                // total_cmp distinguishes -0.0 and 0.0, so bit hashing is
                // coherent with Ord as-is.
                f.to_bits().hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.4}"),
            Value::Decimal(v) => {
                let sign = if *v < 0 { "-" } else { "" };
                let a = v.unsigned_abs();
                write!(f, "{sign}{}.{:02}", a / 100, a % 100)
            }
            Value::Date(d) => {
                let (y, m, dd) = crate::date::civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn total_order_with_nulls_first() {
        let mut vals = [
            Value::I64(5),
            Value::Null,
            Value::str("abc"),
            Value::I64(-1),
            Value::Bool(true),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::I64(-1));
        assert_eq!(vals[3], Value::I64(5));
    }

    #[test]
    fn mixed_numeric_equality_and_hash_coherent() {
        let a = Value::I64(3);
        let b = Value::Decimal(300);
        let c = Value::F64(3.0);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(h(&a), h(&b));
        assert_eq!(h(&b), h(&c));
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Value::Decimal(12345).to_string(), "123.45");
        assert_eq!(Value::Decimal(-7).to_string(), "-0.07");
        assert_eq!(Value::decimal(0.1), Value::Decimal(10));
    }

    #[test]
    fn byte_widths() {
        assert_eq!(Value::I64(1).byte_width(), 8);
        assert_eq!(Value::str("hello").byte_width(), 9);
        assert_eq!(row_bytes(&[Value::I64(1), Value::str("xy")]), 14);
    }

    #[test]
    fn date_display() {
        let d = crate::date::date(1998, 12, 1);
        assert_eq!(Value::Date(d).to_string(), "1998-12-01");
    }
}
