//! Named, typed column schemas.

use crate::value::Value;
use std::fmt;

/// Column data types (the subset TPC-H and YCSB need).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataType {
    Bool,
    I64,
    F64,
    Decimal,
    Date,
    Str,
}

impl DataType {
    /// Does a concrete value inhabit this type (NULL inhabits all)?
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (DataType::Bool, Value::Bool(_))
                | (DataType::I64, Value::I64(_))
                | (DataType::F64, Value::F64(_))
                | (DataType::Decimal, Value::Decimal(_))
                | (DataType::Date, Value::Date(_))
                | (DataType::Str, Value::Str(_))
        )
    }
}

/// A named column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Field {
    pub name: String,
    pub ty: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of fields.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Self {
        Schema {
            fields: cols.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name; panics with a clear message if missing
    /// (schemas are fixed at plan-construction time, so this is a
    /// programming error, not a runtime condition).
    pub fn col(&self, name: &str) -> usize {
        self.index_of(name)
            .unwrap_or_else(|| panic!("no column `{name}` in schema {self}"))
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Keep a subset of columns by index (projection).
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{:?}", fld.name, fld.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_project() {
        let s = Schema::of(&[("a", DataType::I64), ("b", DataType::Str)]);
        assert_eq!(s.col("b"), 1);
        assert_eq!(s.index_of("zz"), None);
        let p = s.project(&[1]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.field(0).name, "b");
    }

    #[test]
    #[should_panic(expected = "no column `zz`")]
    fn missing_column_panics() {
        Schema::of(&[("a", DataType::I64)]).col("zz");
    }

    #[test]
    fn join_concatenates() {
        let a = Schema::of(&[("x", DataType::I64)]);
        let b = Schema::of(&[("y", DataType::Date)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.col("y"), 1);
    }

    #[test]
    fn admits_checks_types() {
        assert!(DataType::I64.admits(&Value::I64(1)));
        assert!(DataType::I64.admits(&Value::Null));
        assert!(!DataType::I64.admits(&Value::str("x")));
    }
}
