//! EXPLAIN-style pretty printing for expressions and logical plans.

use crate::expr::{ArithOp, CmpOp, Expr};
use crate::plan::LogicalPlan;
use std::fmt::Write;

/// Render an expression compactly (`#3` = column 3).
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Col(i) => format!("#{i}"),
        Expr::Lit(v) => format!("{v}"),
        Expr::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {} {})", expr_to_string(a), sym, expr_to_string(b))
        }
        Expr::And(parts) => {
            let inner: Vec<String> = parts.iter().map(expr_to_string).collect();
            format!("({})", inner.join(" AND "))
        }
        Expr::Or(parts) => {
            let inner: Vec<String> = parts.iter().map(expr_to_string).collect();
            format!("({})", inner.join(" OR "))
        }
        Expr::Not(e) => format!("NOT {}", expr_to_string(e)),
        Expr::Arith(op, a, b) => {
            let sym = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            format!("({} {} {})", expr_to_string(a), sym, expr_to_string(b))
        }
        Expr::Like(e, p) => format!("{} LIKE '{p}'", expr_to_string(e)),
        Expr::NotLike(e, p) => format!("{} NOT LIKE '{p}'", expr_to_string(e)),
        Expr::InList(e, vs) => {
            let list: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
            format!("{} IN ({})", expr_to_string(e), list.join(", "))
        }
        Expr::Between(e, lo, hi) => {
            format!("{} BETWEEN {lo} AND {hi}", expr_to_string(e))
        }
        Expr::Case { whens, otherwise } => {
            let mut s = String::from("CASE");
            for (c, o) in whens {
                let _ = write!(s, " WHEN {} THEN {}", expr_to_string(c), expr_to_string(o));
            }
            let _ = write!(s, " ELSE {} END", expr_to_string(otherwise));
            s
        }
        Expr::Substr(e, a, b) => format!("SUBSTRING({}, {a}, {b})", expr_to_string(e)),
        Expr::ExtractYear(e) => format!("EXTRACT(YEAR FROM {})", expr_to_string(e)),
        Expr::IsNull(e) => format!("{} IS NULL", expr_to_string(e)),
    }
}

/// Render a plan as an indented operator tree (children under parents).
pub fn plan_to_string(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(plan: &LogicalPlan, depth: usize, out: &mut String) {
    indent(depth, out);
    match plan {
        LogicalPlan::Scan { table } => {
            let _ = writeln!(out, "Scan {table}");
        }
        LogicalPlan::Filter { input, pred } => {
            let _ = writeln!(out, "Filter {}", expr_to_string(pred));
            render(input, depth + 1, out);
        }
        LogicalPlan::Project { input, exprs } => {
            let cols: Vec<String> = exprs
                .iter()
                .map(|(e, n)| format!("{} AS {n}", expr_to_string(e)))
                .collect();
            let _ = writeln!(out, "Project [{}]", cols.join(", "));
            render(input, depth + 1, out);
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
            mapjoin_hint,
        } => {
            let keys: Vec<String> = on.iter().map(|(l, r)| format!("#{l}=#{r}")).collect();
            let mut line = format!("{kind:?}Join on [{}]", keys.join(", "));
            if let Some(res) = residual {
                let _ = write!(line, " filter {}", expr_to_string(res));
            }
            if *mapjoin_hint {
                line.push_str(" /*+ MAPJOIN */");
            }
            let _ = writeln!(out, "{line}");
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let keys: Vec<String> = group_by
                .iter()
                .map(|(e, n)| format!("{} AS {n}", expr_to_string(e)))
                .collect();
            let calls: Vec<String> = aggs
                .iter()
                .map(|a| {
                    let arg = a
                        .arg
                        .as_ref()
                        .map(expr_to_string)
                        .unwrap_or_else(|| "*".to_string());
                    format!("{:?}({arg}) AS {}", a.func, a.name)
                })
                .collect();
            let _ = writeln!(
                out,
                "Aggregate by [{}] compute [{}]",
                keys.join(", "),
                calls.join(", ")
            );
            render(input, depth + 1, out);
        }
        LogicalPlan::Sort { input, keys } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k| {
                    format!(
                        "{} {}",
                        expr_to_string(&k.expr),
                        if k.desc { "DESC" } else { "ASC" }
                    )
                })
                .collect();
            let _ = writeln!(out, "Sort [{}]", ks.join(", "));
            render(input, depth + 1, out);
        }
        LogicalPlan::Limit { input, n } => {
            let _ = writeln!(out, "Limit {n}");
            render(input, depth + 1, out);
        }
        LogicalPlan::Materialize { input, label } => {
            let _ = writeln!(out, "Materialize '{label}'");
            render(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64, lit_str};
    use crate::plan::AggCall;

    #[test]
    fn renders_expressions() {
        let e = col(0).gt(lit_i64(5));
        assert_eq!(expr_to_string(&e), "(#0 > 5)");
        let e2 = crate::expr::and(vec![col(1).eq(lit_str("x")), col(2).like("a%")]);
        assert_eq!(expr_to_string(&e2), "((#1 = x) AND #2 LIKE 'a%')");
    }

    #[test]
    fn renders_plan_tree_with_indentation() {
        let plan = LogicalPlan::scan("t")
            .filter(col(0).gt(lit_i64(1)))
            .join(LogicalPlan::scan("u"), vec![(0, 0)])
            .aggregate(vec![(col(1), "g")], vec![AggCall::count_star("n")]);
        let s = plan_to_string(&plan);
        assert!(s.contains("Aggregate by [#1 AS g]"));
        assert!(s.contains("InnerJoin on [#0=#0]"));
        assert!(s.contains("  Filter (#0 > 1)") || s.contains("    Filter"));
        assert!(s.contains("Scan t"));
        assert!(s.contains("Scan u"));
        // Leaves are deeper than the root.
        let root_depth =
            s.lines().next().unwrap().len() - s.lines().next().unwrap().trim_start().len();
        let scan_line = s.lines().find(|l| l.contains("Scan t")).unwrap();
        let scan_depth = scan_line.len() - scan_line.trim_start().len();
        assert!(scan_depth > root_depth);
    }

    #[test]
    fn all_tpch_queries_render() {
        // Smoke test: the printer handles every construct the 22 plans use.
        // (tpch depends on relational, so build a representative plan here
        // touching Case/Between/In/Substr/Extract instead.)
        let plan = LogicalPlan::scan("t")
            .project(vec![
                (col(0).substr(1, 2), "code"),
                (col(1).extract_year(), "year"),
                (
                    crate::expr::Expr::Case {
                        whens: vec![(
                            col(2).between(crate::Value::I64(1), crate::Value::I64(9)),
                            lit_i64(1),
                        )],
                        otherwise: Box::new(lit_i64(0)),
                    },
                    "flag",
                ),
            ])
            .sort(vec![crate::SortKey::desc(col(0))])
            .limit(10)
            .materialize("tmp");
        let s = plan_to_string(&plan);
        assert!(s.contains("Materialize 'tmp'"));
        assert!(s.contains("Limit 10"));
        assert!(s.contains("SUBSTRING(#0, 1, 2)"));
        assert!(s.contains("EXTRACT(YEAR FROM #1)"));
        assert!(s.contains("CASE WHEN"));
    }
}
