//! Operator kernels over materialized row vectors.
//!
//! These are the building blocks every engine shares: the reference executor
//! composes them directly; the Hive engine runs them inside map/reduce tasks
//! (partial aggregation in mappers, final in reducers); the PDW engine runs
//! them per compute node between DMS data movements. Keeping one set of
//! kernels guarantees cross-engine answer equality is a property of the
//! *plans*, not of subtly different operator semantics.

use crate::expr::Expr;
use crate::plan::{AggCall, AggFunc, JoinKind, SortKey};
use crate::value::{Row, Value};
// simlint: allow(no-unordered-iter) — HashMap/HashSet here are probe- or count-only (see per-site allows); ordered state uses BTreeMap
use std::collections::{BTreeMap, HashMap, HashSet};

/// WHERE: keep rows matching the predicate (NULL = drop).
pub fn filter(rows: Vec<Row>, pred: &Expr) -> Vec<Row> {
    rows.into_iter().filter(|r| pred.matches(r)).collect()
}

/// SELECT list: evaluate expressions per row.
pub fn project(rows: &[Row], exprs: &[(Expr, String)]) -> Vec<Row> {
    rows.iter()
        .map(|r| exprs.iter().map(|(e, _)| e.eval(r)).collect())
        .collect()
}

fn key_of(row: &[Value], cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&c| row[c].clone()).collect()
}

/// Hash join. Builds on `right`, probes with `left`. `on` holds
/// `(left_col, right_col)` pairs; empty `on` degrades to a nested-loop cross
/// join. `residual` is evaluated over the concatenated `[left ++ right]` row
/// (for all kinds, including semi/anti, where it sees the candidate match).
///
/// NULL join keys never match (SQL semantics).
pub fn hash_join(
    left: &[Row],
    right: &[Row],
    on: &[(usize, usize)],
    kind: JoinKind,
    residual: Option<&Expr>,
    right_width: usize,
) -> Vec<Row> {
    if on.is_empty() {
        return cross_join(left, right, kind, residual, right_width);
    }
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();

    // simlint: allow(no-unordered-iter) — build side is probe-only (`get`), output order is driven by the `left` scan
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, r) in right.iter().enumerate() {
        let k = key_of(r, &rcols);
        if k.iter().any(Value::is_null) {
            continue;
        }
        table.entry(k).or_default().push(i);
    }

    let mut out = Vec::new();
    let mut scratch: Row = Vec::new();
    for l in left {
        let k = key_of(l, &lcols);
        let matches = if k.iter().any(Value::is_null) {
            None
        } else {
            table.get(&k)
        };
        let mut any = false;
        if let Some(idxs) = matches {
            for &ri in idxs {
                let r = &right[ri];
                let ok = match residual {
                    Some(pred) => {
                        scratch.clear();
                        scratch.extend(l.iter().cloned());
                        scratch.extend(r.iter().cloned());
                        pred.matches(&scratch)
                    }
                    None => true,
                };
                if !ok {
                    continue;
                }
                any = true;
                match kind {
                    JoinKind::Inner | JoinKind::Left => {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        out.push(row);
                    }
                    JoinKind::LeftSemi => {
                        out.push(l.clone());
                        break;
                    }
                    JoinKind::LeftAnti => break,
                }
            }
        }
        if !any {
            match kind {
                JoinKind::Left => {
                    let mut row = l.clone();
                    row.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(row);
                }
                JoinKind::LeftAnti => out.push(l.clone()),
                _ => {}
            }
        }
    }
    out
}

fn cross_join(
    left: &[Row],
    right: &[Row],
    kind: JoinKind,
    residual: Option<&Expr>,
    right_width: usize,
) -> Vec<Row> {
    let mut out = Vec::new();
    let mut scratch: Row = Vec::new();
    for l in left {
        let mut any = false;
        for r in right {
            let ok = match residual {
                Some(pred) => {
                    scratch.clear();
                    scratch.extend(l.iter().cloned());
                    scratch.extend(r.iter().cloned());
                    pred.matches(&scratch)
                }
                None => true,
            };
            if !ok {
                continue;
            }
            any = true;
            match kind {
                JoinKind::Inner | JoinKind::Left => {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    out.push(row);
                }
                JoinKind::LeftSemi => {
                    out.push(l.clone());
                    break;
                }
                JoinKind::LeftAnti => break,
            }
        }
        if !any {
            match kind {
                JoinKind::Left => {
                    let mut row = l.clone();
                    row.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(row);
                }
                JoinKind::LeftAnti => out.push(l.clone()),
                _ => {}
            }
        }
    }
    out
}

/// Mergeable aggregate state — the key to distributed aggregation: mappers /
/// compute nodes build partial states, reducers / the control node merge
/// them. `finish` produces the SQL result value.
#[derive(Clone, Debug)]
pub enum AggState {
    Count(i64),
    Sum { sum: f64, seen: bool },
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    // simlint: allow(no-unordered-iter) — distinct set is only ever counted (`len`), never iterated
    Distinct(HashSet<Value>),
}

impl AggState {
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                sum: 0.0,
                seen: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            // simlint: allow(no-unordered-iter) — distinct set is count-only
            AggFunc::CountDistinct => AggState::Distinct(HashSet::new()),
        }
    }

    /// Fold one input value (already NULL-filtered by the caller for
    /// `COUNT(expr)` semantics — NULLs are skipped for every function).
    pub fn update(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum { sum, seen } => {
                *sum += v.as_f64().expect("SUM over non-numeric");
                *seen = true;
            }
            AggState::Avg { sum, n } => {
                *sum += v.as_f64().expect("AVG over non-numeric");
                *n += 1;
            }
            AggState::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v < *c) {
                    *cur = Some(v);
                }
            }
            AggState::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v > *c) {
                    *cur = Some(v);
                }
            }
            AggState::Distinct(set) => {
                set.insert(v);
            }
        }
    }

    /// COUNT(*) has no argument: always counts.
    pub fn update_star(&mut self) {
        if let AggState::Count(n) = self {
            *n += 1;
        } else {
            panic!("update_star on non-count state");
        }
    }

    /// Merge a partial state of the same function.
    pub fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum { sum: a, seen: sa }, AggState::Sum { sum: b, seen: sb }) => {
                *a += b;
                *sa |= sb;
            }
            (AggState::Avg { sum: a, n: na }, AggState::Avg { sum: b, n: nb }) => {
                *a += b;
                *na += nb;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(v) = b {
                    if a.as_ref().is_none_or(|c| v < *c) {
                        *a = Some(v);
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(v) = b {
                    if a.as_ref().is_none_or(|c| v > *c) {
                        *a = Some(v);
                    }
                }
            }
            (AggState::Distinct(a), AggState::Distinct(b)) => a.extend(b),
            (a, b) => panic!("merging mismatched agg states {a:?} / {b:?}"),
        }
    }

    pub fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::I64(n),
            AggState::Sum { sum, seen } => {
                if seen {
                    Value::F64(sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::F64(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Distinct(set) => Value::I64(set.len() as i64),
        }
    }

    /// Approximate in-memory footprint (drives Hive map-side agg spill
    /// decisions and map-join memory checks).
    pub fn approx_bytes(&self) -> u64 {
        match self {
            AggState::Distinct(set) => 16 + set.iter().map(Value::byte_width).sum::<u64>(),
            _ => 16,
        }
    }
}

/// Grouped partial-aggregation table: group key -> one state per agg call.
///
/// A `BTreeMap`, deliberately: [`aggregate_finish`] iterates it into output
/// rows, so the table's order is the result order for any query without an
/// explicit ORDER BY. Sorted-by-group-key is deterministic across runs and
/// refactors; a hash table here would leak its bucket order into result
/// bytes (the `no-unordered-iter` simlint rule guards this).
pub type GroupTable = BTreeMap<Vec<Value>, Vec<AggState>>;

/// Build partial aggregate states for a chunk of rows.
pub fn aggregate_partial(
    rows: &[Row],
    group_by: &[(Expr, String)],
    aggs: &[AggCall],
) -> GroupTable {
    let mut table: GroupTable = GroupTable::new();
    for row in rows {
        let key: Vec<Value> = group_by.iter().map(|(e, _)| e.eval(row)).collect();
        let states = table
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect());
        for (st, call) in states.iter_mut().zip(aggs) {
            match &call.arg {
                Some(e) => st.update(e.eval(row)),
                None => st.update_star(),
            }
        }
    }
    // Global aggregate over empty input still yields one (empty-key) group.
    if group_by.is_empty() && table.is_empty() {
        table.insert(
            Vec::new(),
            aggs.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }
    table
}

/// Merge partial tables (reduce side / control node).
pub fn aggregate_merge(mut acc: GroupTable, other: GroupTable) -> GroupTable {
    for (k, states) in other {
        match acc.entry(k) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                for (a, b) in e.get_mut().iter_mut().zip(states) {
                    a.merge(b);
                }
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(states);
            }
        }
    }
    acc
}

/// Finish a group table into output rows `[group keys..., agg values...]`.
pub fn aggregate_finish(table: GroupTable) -> Vec<Row> {
    table
        .into_iter()
        .map(|(mut key, states)| {
            key.extend(states.into_iter().map(AggState::finish));
            key
        })
        .collect()
}

/// One-shot hash aggregate (reference executor path).
pub fn hash_aggregate(rows: &[Row], group_by: &[(Expr, String)], aggs: &[AggCall]) -> Vec<Row> {
    aggregate_finish(aggregate_partial(rows, group_by, aggs))
}

/// ORDER BY.
pub fn sort(mut rows: Vec<Row>, keys: &[SortKey]) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for k in keys {
            let (va, vb) = (k.expr.eval(a), k.expr.eval(b));
            let ord = va.cmp(&vb);
            let ord = if k.desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

/// LIMIT.
pub fn limit(mut rows: Vec<Row>, n: usize) -> Vec<Row> {
    rows.truncate(n);
    rows
}

/// Partition rows by a hash of the given columns into `n` buckets — the
/// primitive behind Hive bucketing, PDW hash distribution, MapReduce
/// shuffling, and client-side sharding. Deterministic FNV-1a so every engine
/// agrees on placement.
pub fn hash_partition(rows: Vec<Row>, cols: &[usize], n: usize) -> Vec<Vec<Row>> {
    let mut out: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
    for row in rows {
        let b = bucket_of(&row, cols, n);
        out[b].push(row);
    }
    out
}

/// Deterministic bucket assignment (FNV-1a over the display form of the key
/// columns — stable across engines and runs).
pub fn bucket_of(row: &[Value], cols: &[usize], n: usize) -> usize {
    debug_assert!(n > 0);
    let mut h: u64 = 0xcbf29ce484222325;
    for &c in cols {
        fnv_value(&mut h, &row[c]);
    }
    (h % n as u64) as usize
}

fn fnv_value(h: &mut u64, v: &Value) {
    const P: u64 = 0x100000001b3;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(P);
        }
    };
    match v {
        Value::Null => write(&[0]),
        Value::Bool(b) => write(&[1, *b as u8]),
        Value::I64(x) => write(&x.to_le_bytes()),
        Value::F64(x) => write(&x.to_bits().to_le_bytes()),
        Value::Decimal(x) => write(&x.to_le_bytes()),
        Value::Date(x) => write(&(*x as i64).to_le_bytes()),
        Value::Str(s) => write(s.as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64};

    fn rows(data: &[&[i64]]) -> Vec<Row> {
        data.iter()
            .map(|r| r.iter().map(|&v| Value::I64(v)).collect())
            .collect()
    }

    #[test]
    fn filter_and_project() {
        let r = rows(&[&[1, 10], &[2, 20], &[3, 30]]);
        let f = filter(r, &col(0).ge(lit_i64(2)));
        assert_eq!(f.len(), 2);
        let p = project(&f, &[(col(1), "b".into())]);
        assert_eq!(p, rows(&[&[20], &[30]]));
    }

    #[test]
    fn inner_join_matches() {
        let l = rows(&[&[1, 100], &[2, 200], &[3, 300]]);
        let r = rows(&[&[1, 11], &[1, 12], &[4, 44]]);
        let out = hash_join(&l, &r, &[(0, 0)], JoinKind::Inner, None, 2);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&rows(&[&[1, 100, 1, 11]])[0]));
        assert!(out.contains(&rows(&[&[1, 100, 1, 12]])[0]));
    }

    #[test]
    fn left_join_pads_nulls() {
        let l = rows(&[&[1], &[2]]);
        let r = rows(&[&[1, 10]]);
        let out = hash_join(&l, &r, &[(0, 0)], JoinKind::Left, None, 2);
        assert_eq!(out.len(), 2);
        let unmatched: Vec<_> = out.iter().filter(|r| r[1].is_null()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][0], Value::I64(2));
    }

    #[test]
    fn semi_and_anti_join() {
        let l = rows(&[&[1], &[2], &[3]]);
        let r = rows(&[&[2, 0], &[2, 1]]);
        let semi = hash_join(&l, &r, &[(0, 0)], JoinKind::LeftSemi, None, 2);
        assert_eq!(semi, rows(&[&[2]])); // no duplicates from multi-match
        let anti = hash_join(&l, &r, &[(0, 0)], JoinKind::LeftAnti, None, 2);
        assert_eq!(anti.len(), 2);
    }

    #[test]
    fn null_keys_never_match() {
        let l = vec![vec![Value::Null], vec![Value::I64(1)]];
        let r = vec![vec![Value::Null], vec![Value::I64(1)]];
        let out = hash_join(&l, &r, &[(0, 0)], JoinKind::Inner, None, 1);
        assert_eq!(out.len(), 1);
        // Anti join: NULL probe key has no match, so it *survives*.
        let anti = hash_join(&l, &r, &[(0, 0)], JoinKind::LeftAnti, None, 1);
        assert_eq!(anti.len(), 1);
        assert!(anti[0][0].is_null());
    }

    #[test]
    fn residual_filters_matches() {
        let l = rows(&[&[1, 5]]);
        let r = rows(&[&[1, 3], &[1, 9]]);
        // join on col0, keep only right.col1 > left.col1
        let out = hash_join(
            &l,
            &r,
            &[(0, 0)],
            JoinKind::Inner,
            Some(&col(3).gt(col(1))),
            2,
        );
        assert_eq!(out, rows(&[&[1, 5, 1, 9]]));
    }

    #[test]
    fn cross_join_via_empty_on() {
        let l = rows(&[&[1], &[2]]);
        let r = rows(&[&[10]]);
        let out = hash_join(&l, &r, &[], JoinKind::Inner, None, 1);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn aggregate_grouped() {
        let r = rows(&[&[1, 10], &[1, 20], &[2, 5]]);
        let out = hash_aggregate(
            &r,
            &[(col(0), "g".into())],
            &[
                AggCall::count_star("n"),
                AggCall::sum(col(1), "s"),
                AggCall::avg(col(1), "a"),
                AggCall::min(col(1), "lo"),
                AggCall::max(col(1), "hi"),
            ],
        );
        let sorted = sort(out, &[SortKey::asc(col(0))]);
        assert_eq!(sorted.len(), 2);
        assert_eq!(sorted[0][1], Value::I64(2));
        assert_eq!(sorted[0][2], Value::F64(30.0));
        assert_eq!(sorted[0][3], Value::F64(15.0));
        assert_eq!(sorted[0][4], Value::I64(10));
        assert_eq!(sorted[0][5], Value::I64(20));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let out = hash_aggregate(
            &[],
            &[],
            &[AggCall::count_star("n"), AggCall::sum(col(0), "s")],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::I64(0));
        assert!(out[0][1].is_null());
    }

    #[test]
    fn partial_merge_equals_one_shot() {
        let r = rows(&[&[1, 10], &[1, 20], &[2, 5], &[2, 7], &[3, 1]]);
        let gb = [(col(0), "g".to_string())];
        let aggs = [
            AggCall::sum(col(1), "s"),
            AggCall::count_star("n"),
            AggCall::count_distinct(col(1), "d"),
        ];
        let one_shot = sort(hash_aggregate(&r, &gb, &aggs), &[SortKey::asc(col(0))]);
        let p1 = aggregate_partial(&r[..2], &gb, &aggs);
        let p2 = aggregate_partial(&r[2..], &gb, &aggs);
        let merged = sort(
            aggregate_finish(aggregate_merge(p1, p2)),
            &[SortKey::asc(col(0))],
        );
        assert_eq!(one_shot, merged);
    }

    #[test]
    fn count_distinct_merges_sets() {
        let r = rows(&[&[1], &[1], &[2]]);
        let aggs = [AggCall::count_distinct(col(0), "d")];
        let p1 = aggregate_partial(&r[..2], &[], &aggs);
        let p2 = aggregate_partial(&r[2..], &[], &aggs);
        let out = aggregate_finish(aggregate_merge(p1, p2));
        assert_eq!(out[0][0], Value::I64(2));
    }

    #[test]
    fn sort_multi_key_with_desc() {
        let r = rows(&[&[1, 2], &[2, 1], &[1, 1]]);
        let out = sort(r, &[SortKey::asc(col(0)), SortKey::desc(col(1))]);
        assert_eq!(out, rows(&[&[1, 2], &[1, 1], &[2, 1]]));
    }

    #[test]
    fn hash_partition_is_deterministic_and_complete() {
        let r = rows(&[&[1], &[2], &[3], &[4], &[5], &[6]]);
        let parts = hash_partition(r.clone(), &[0], 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 6);
        let parts2 = hash_partition(r, &[0], 4);
        assert_eq!(parts, parts2);
    }

    #[test]
    fn aggregate_skips_nulls() {
        let r = vec![
            vec![Value::I64(1), Value::Null],
            vec![Value::I64(1), Value::I64(4)],
        ];
        let out = hash_aggregate(
            &r,
            &[(col(0), "g".into())],
            &[
                AggCall::new(AggFunc::Count, Some(col(1)), "c"),
                AggCall::avg(col(1), "a"),
            ],
        );
        assert_eq!(out[0][1], Value::I64(1)); // COUNT(col) skips NULL
        assert_eq!(out[0][2], Value::F64(4.0));
    }
}
