//! # relational — shared relational core
//!
//! The common substrate for the three SQL-ish engines in this reproduction
//! (the PDW-style parallel warehouse, the Hive-style MapReduce warehouse,
//! and the single-node OLTP engine):
//!
//! * [`value`] — the dynamic [`Value`] type with a total order
//!   (dates, fixed-point decimals, strings, ...),
//! * [`date`] — proleptic-Gregorian civil date arithmetic (TPC-H needs
//!   `date '1998-12-01' - interval '90' day` and friends),
//! * [`schema`] — named, typed columns,
//! * [`expr`] — an expression tree with an interpreter (comparisons,
//!   arithmetic, LIKE, CASE, SUBSTRING, EXTRACT...),
//! * [`plan`] — a logical relational algebra (scan / filter / project /
//!   join / aggregate / sort / limit),
//! * [`ops`] — operator kernels over materialized row vectors (hash join,
//!   hash aggregate, sort, ...) reused by every engine,
//! * [`batch`] — vectorized counterparts of the same kernels over typed
//!   column vectors (`ColumnBatch`), answer-equivalent by construction
//!   and fed by the columnar `storage::colblock` scan paths,
//! * [`exec`] — a single-node reference executor used as the ground truth
//!   in cross-engine answer-equality tests,
//! * [`catalog`] — an in-memory table provider.
//!
//! ```
//! use relational::expr::{col, lit_i64};
//! use relational::{execute, AggCall, Catalog, DataType, LogicalPlan, Schema, Table, Value};
//!
//! let mut cat = Catalog::new();
//! cat.add(
//!     "t",
//!     Table::new(
//!         Schema::of(&[("k", DataType::I64), ("v", DataType::I64)]),
//!         vec![
//!             vec![Value::I64(1), Value::I64(10)],
//!             vec![Value::I64(2), Value::I64(20)],
//!             vec![Value::I64(2), Value::I64(30)],
//!         ],
//!     ),
//! );
//! let plan = LogicalPlan::scan("t")
//!     .filter(col(0).ge(lit_i64(2)))
//!     .aggregate(vec![(col(0), "k")], vec![AggCall::sum(col(1), "s")]);
//! let (_, rows) = execute(&plan, &cat);
//! assert_eq!(rows, vec![vec![Value::I64(2), Value::F64(50.0)]]);
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod catalog;
pub mod date;
pub mod display;
pub mod exec;
pub mod expr;
pub mod ops;
pub mod plan;
pub mod schema;
pub mod testing;
pub mod value;

pub use catalog::{Catalog, Table};
pub use exec::execute;
pub use expr::Expr;
pub use plan::{AggCall, AggFunc, JoinKind, LogicalPlan, SortKey};
pub use schema::{DataType, Field, Schema};
pub use value::{Row, Value};
