//! The logical relational algebra shared by every engine.
//!
//! TPC-H queries are built once as `LogicalPlan`s (in the `tpch` crate);
//! the PDW engine lowers them with a cost-based optimizer, the Hive engine
//! lowers them syntax-directed into MapReduce DAGs, and the reference
//! executor in [`crate::exec`] runs them directly as ground truth.
//!
//! Correlated / scalar subqueries are expressed structurally: semi/anti
//! joins for EXISTS / NOT EXISTS / IN, and joins against aggregated subplans
//! for scalar comparisons (standard manual decorrelation, mirroring how the
//! Hive team hand-split the TPC-H scripts).

use crate::expr::Expr;
use crate::schema::{DataType, Field, Schema};

/// Join variants used by TPC-H.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinKind {
    Inner,
    /// Left outer (Q13 needs it).
    Left,
    /// EXISTS / IN.
    LeftSemi,
    /// NOT EXISTS / NOT IN.
    LeftAnti,
}

/// Aggregate functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    CountDistinct,
}

/// One aggregate call, e.g. `sum(l_extendedprice * (1 - l_discount))`.
#[derive(Clone, Debug)]
pub struct AggCall {
    pub func: AggFunc,
    /// `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl AggCall {
    pub fn new(func: AggFunc, arg: Option<Expr>, name: impl Into<String>) -> Self {
        AggCall {
            func,
            arg,
            name: name.into(),
        }
    }
    pub fn count_star(name: impl Into<String>) -> Self {
        Self::new(AggFunc::Count, None, name)
    }
    pub fn sum(arg: Expr, name: impl Into<String>) -> Self {
        Self::new(AggFunc::Sum, Some(arg), name)
    }
    pub fn avg(arg: Expr, name: impl Into<String>) -> Self {
        Self::new(AggFunc::Avg, Some(arg), name)
    }
    pub fn min(arg: Expr, name: impl Into<String>) -> Self {
        Self::new(AggFunc::Min, Some(arg), name)
    }
    pub fn max(arg: Expr, name: impl Into<String>) -> Self {
        Self::new(AggFunc::Max, Some(arg), name)
    }
    pub fn count_distinct(arg: Expr, name: impl Into<String>) -> Self {
        Self::new(AggFunc::CountDistinct, Some(arg), name)
    }
}

/// One ORDER BY key.
#[derive(Clone, Debug)]
pub struct SortKey {
    pub expr: Expr,
    pub desc: bool,
}

impl SortKey {
    pub fn asc(expr: Expr) -> Self {
        SortKey { expr, desc: false }
    }
    pub fn desc(expr: Expr) -> Self {
        SortKey { expr, desc: true }
    }
}

/// A logical plan node.
#[derive(Clone, Debug)]
pub enum LogicalPlan {
    Scan {
        table: String,
    },
    Filter {
        input: Box<LogicalPlan>,
        pred: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
    },
    /// Equi-join on `on` column pairs (left idx, right idx) plus an optional
    /// residual predicate over the concatenated `[left ++ right]` row.
    /// An empty `on` list is a nested-loop cross join (used for joining a
    /// single-row scalar-aggregate subplan).
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        on: Vec<(usize, usize)>,
        residual: Option<Expr>,
        /// A `/*+ MAPJOIN */` hint (the hand-written Hive scripts carry
        /// these). Hive attempts a map-side join even when the size
        /// heuristics are pessimistic — and may fail at runtime (Q22).
        /// Other engines ignore it.
        mapjoin_hint: bool,
    },
    /// Hash aggregate. An empty `group_by` is a global aggregate producing
    /// exactly one row (even over empty input).
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggCall>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    Limit {
        input: Box<LogicalPlan>,
        n: usize,
    },
    /// An explicit materialization boundary: the Hive TPC-H scripts write
    /// intermediate results into temp tables (`INSERT OVERWRITE ... tmp`),
    /// which forces a job boundary and loses physical properties like
    /// bucketing. The reference executor and the PDW optimizer treat this
    /// as a pass-through; the Hive lowering honours it.
    Materialize {
        input: Box<LogicalPlan>,
        label: String,
    },
}

/// Resolves table names to schemas during plan-schema derivation.
pub trait SchemaProvider {
    fn table_schema(&self, name: &str) -> &Schema;
}

impl LogicalPlan {
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
        }
    }

    pub fn filter(self, pred: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            pred,
        }
    }

    pub fn project(self, exprs: Vec<(Expr, &str)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
        }
    }

    pub fn join(self, right: LogicalPlan, on: Vec<(usize, usize)>) -> LogicalPlan {
        self.join_kind(right, JoinKind::Inner, on, None)
    }

    pub fn join_kind(
        self,
        right: LogicalPlan,
        kind: JoinKind,
        on: Vec<(usize, usize)>,
        residual: Option<Expr>,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            kind,
            on,
            residual,
            mapjoin_hint: false,
        }
    }

    /// Attach a MAPJOIN hint to this node (must be a Join).
    pub fn hint_mapjoin(mut self) -> LogicalPlan {
        match &mut self {
            LogicalPlan::Join { mapjoin_hint, .. } => *mapjoin_hint = true,
            other => panic!("hint_mapjoin on non-join plan {other:?}"),
        }
        self
    }

    pub fn aggregate(self, group_by: Vec<(Expr, &str)>, aggs: Vec<AggCall>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by: group_by
                .into_iter()
                .map(|(e, n)| (e, n.to_string()))
                .collect(),
            aggs,
        }
    }

    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Mark a temp-table boundary (see [`LogicalPlan::Materialize`]).
    pub fn materialize(self, label: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Materialize {
            input: Box::new(self),
            label: label.into(),
        }
    }

    /// Derive the output schema against a catalog.
    pub fn schema(&self, provider: &dyn SchemaProvider) -> Schema {
        match self {
            LogicalPlan::Scan { table } => provider.table_schema(table).clone(),
            LogicalPlan::Filter { input, .. } => input.schema(provider),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema(provider);
                Schema::new(
                    exprs
                        .iter()
                        .map(|(e, n)| Field::new(n.clone(), infer_type(e, &in_schema)))
                        .collect(),
                )
            }
            LogicalPlan::Join {
                left, right, kind, ..
            } => {
                let ls = left.schema(provider);
                match kind {
                    JoinKind::LeftSemi | JoinKind::LeftAnti => ls,
                    _ => ls.join(&right.schema(provider)),
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema(provider);
                let mut fields: Vec<Field> = group_by
                    .iter()
                    .map(|(e, n)| Field::new(n.clone(), infer_type(e, &in_schema)))
                    .collect();
                for a in aggs {
                    let ty = match a.func {
                        AggFunc::Count | AggFunc::CountDistinct => DataType::I64,
                        AggFunc::Sum | AggFunc::Avg => DataType::F64,
                        AggFunc::Min | AggFunc::Max => a
                            .arg
                            .as_ref()
                            .map(|e| infer_type(e, &in_schema))
                            .unwrap_or(DataType::F64),
                    };
                    fields.push(Field::new(a.name.clone(), ty));
                }
                Schema::new(fields)
            }
            LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Materialize { input, .. } => input.schema(provider),
        }
    }

    /// All base tables referenced by the plan (deduplicated, in first-use
    /// order). Engines use this for data-placement decisions.
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            LogicalPlan::Scan { table } => {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Materialize { input, .. } => input.collect_tables(out),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }
}

impl LogicalPlan {
    /// Validate that every column reference in the plan is in range for
    /// its input schema — a structural check for hand-built plans. Returns
    /// a description of the first violation.
    pub fn validate(&self, provider: &dyn SchemaProvider) -> Result<(), String> {
        fn check_expr(e: &Expr, width: usize, at: &str) -> Result<(), String> {
            let mut cols = std::collections::BTreeSet::new();
            e.referenced_cols(&mut cols);
            match cols.iter().find(|&&c| c >= width) {
                Some(c) => Err(format!("{at}: column #{c} out of range (width {width})")),
                None => Ok(()),
            }
        }
        match self {
            LogicalPlan::Scan { .. } => Ok(()),
            LogicalPlan::Filter { input, pred } => {
                input.validate(provider)?;
                check_expr(pred, input.schema(provider).len(), "Filter")
            }
            LogicalPlan::Project { input, exprs } => {
                input.validate(provider)?;
                let w = input.schema(provider).len();
                for (e, n) in exprs {
                    check_expr(e, w, &format!("Project {n}"))?;
                }
                Ok(())
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                residual,
                ..
            } => {
                left.validate(provider)?;
                right.validate(provider)?;
                let lw = left.schema(provider).len();
                let rw = right.schema(provider).len();
                for &(l, r) in on {
                    if l >= lw {
                        return Err(format!("Join: left key #{l} out of range ({lw})"));
                    }
                    if r >= rw {
                        return Err(format!("Join: right key #{r} out of range ({rw})"));
                    }
                }
                if let Some(res) = residual {
                    check_expr(res, lw + rw, "Join residual")?;
                }
                if matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti) && on.is_empty() {
                    return Err("semi/anti join needs at least one key".to_string());
                }
                Ok(())
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                input.validate(provider)?;
                let w = input.schema(provider).len();
                for (e, n) in group_by {
                    check_expr(e, w, &format!("Aggregate key {n}"))?;
                }
                for a in aggs {
                    if let Some(e) = &a.arg {
                        check_expr(e, w, &format!("Aggregate {}", a.name))?;
                    }
                }
                Ok(())
            }
            LogicalPlan::Sort { input, keys } => {
                input.validate(provider)?;
                let w = input.schema(provider).len();
                for k in keys {
                    check_expr(&k.expr, w, "Sort key")?;
                }
                Ok(())
            }
            LogicalPlan::Limit { input, .. } | LogicalPlan::Materialize { input, .. } => {
                input.validate(provider)
            }
        }
    }
}

/// Best-effort static type of an expression over a schema. Only needs to be
/// right enough for schema derivation (column name resolution + display).
pub fn infer_type(e: &Expr, schema: &Schema) -> DataType {
    use crate::expr::ArithOp;
    match e {
        Expr::Col(i) => schema.field(*i).ty,
        Expr::Lit(v) => match v {
            crate::value::Value::Null => DataType::Str,
            crate::value::Value::Bool(_) => DataType::Bool,
            crate::value::Value::I64(_) => DataType::I64,
            crate::value::Value::F64(_) => DataType::F64,
            crate::value::Value::Decimal(_) => DataType::Decimal,
            crate::value::Value::Date(_) => DataType::Date,
            crate::value::Value::Str(_) => DataType::Str,
        },
        Expr::Cmp(..)
        | Expr::And(_)
        | Expr::Or(_)
        | Expr::Not(_)
        | Expr::Like(..)
        | Expr::NotLike(..)
        | Expr::InList(..)
        | Expr::Between(..)
        | Expr::IsNull(_) => DataType::Bool,
        Expr::Arith(op, a, _) => {
            // date +/- days stays a date
            if matches!(op, ArithOp::Add | ArithOp::Sub) && infer_type(a, schema) == DataType::Date
            {
                DataType::Date
            } else {
                DataType::F64
            }
        }
        Expr::Case { whens, otherwise } => whens
            .first()
            .map(|(_, out)| infer_type(out, schema))
            .unwrap_or_else(|| infer_type(otherwise, schema)),
        Expr::Substr(..) => DataType::Str,
        Expr::ExtractYear(_) => DataType::I64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64};
    use std::collections::BTreeMap;

    struct P(BTreeMap<String, Schema>);
    impl SchemaProvider for P {
        fn table_schema(&self, name: &str) -> &Schema {
            &self.0[name]
        }
    }

    fn provider() -> P {
        let mut m = BTreeMap::new();
        m.insert(
            "t".to_string(),
            Schema::of(&[("a", DataType::I64), ("b", DataType::Str)]),
        );
        m.insert(
            "u".to_string(),
            Schema::of(&[("c", DataType::I64), ("d", DataType::Date)]),
        );
        P(m)
    }

    #[test]
    fn schema_flows_through_operators() {
        let p = provider();
        let plan = LogicalPlan::scan("t")
            .filter(col(0).gt(lit_i64(1)))
            .join(LogicalPlan::scan("u"), vec![(0, 0)])
            .project(vec![(col(1), "b"), (col(3), "d")]);
        let s = plan.schema(&p);
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(0).ty, DataType::Str);
        assert_eq!(s.field(1).ty, DataType::Date);
    }

    #[test]
    fn semi_join_keeps_left_schema() {
        let p = provider();
        let plan = LogicalPlan::scan("t").join_kind(
            LogicalPlan::scan("u"),
            JoinKind::LeftSemi,
            vec![(0, 0)],
            None,
        );
        assert_eq!(plan.schema(&p).len(), 2);
    }

    #[test]
    fn aggregate_schema() {
        let p = provider();
        let plan = LogicalPlan::scan("t").aggregate(
            vec![(col(1), "b")],
            vec![AggCall::count_star("cnt"), AggCall::sum(col(0), "total")],
        );
        let s = plan.schema(&p);
        assert_eq!(s.col("cnt"), 1);
        assert_eq!(s.field(1).ty, DataType::I64);
        assert_eq!(s.field(2).ty, DataType::F64);
    }

    #[test]
    fn tables_deduplicated_in_order() {
        let plan = LogicalPlan::scan("t")
            .join(LogicalPlan::scan("u"), vec![(0, 0)])
            .join(LogicalPlan::scan("t"), vec![(0, 0)]);
        assert_eq!(plan.tables(), vec!["t".to_string(), "u".to_string()]);
    }

    #[test]
    fn date_arith_infers_date() {
        let p = provider();
        let s = LogicalPlan::scan("u")
            .project(vec![(col(1).add(lit_i64(30)), "d30")])
            .schema(&p);
        assert_eq!(s.field(0).ty, DataType::Date);
    }
}
