//! Property tests for the DFS: block math, replica placement, and space
//! accounting under random create/delete workloads.

use dfs::{Dfs, DfsConfig, DfsError};
use proptest::prelude::*;

fn cfg(nodes: usize, block: u64, repl: u32) -> DfsConfig {
    DfsConfig {
        block_size: block,
        replication: repl,
        nodes,
        capacity_per_node: None,
    }
}

proptest! {
    #[test]
    fn block_count_matches_ceiling_division(
        len in 0u64..10_000,
        block in 1u64..512,
    ) {
        let mut fs: Dfs<()> = Dfs::new(cfg(4, block, 3));
        let meta = fs.create("/f", len, ()).unwrap();
        let expect = if len == 0 { 1 } else { len.div_ceil(block) };
        prop_assert_eq!(meta.blocks.len() as u64, expect);
        // Block lengths sum to the file length and never exceed block size.
        let total: u64 = meta.blocks.iter().map(|b| b.len).sum();
        prop_assert_eq!(total, len);
        for b in &meta.blocks {
            prop_assert!(b.len <= block);
        }
    }

    #[test]
    fn replicas_are_distinct_nodes(
        nodes in 1usize..12,
        repl in 1u32..5,
        len in 1u64..1000,
    ) {
        let mut fs: Dfs<()> = Dfs::new(cfg(nodes, 100, repl));
        let meta = fs.create("/f", len, ()).unwrap();
        for b in &meta.blocks {
            let mut rs = b.replicas.clone();
            rs.sort_unstable();
            rs.dedup();
            prop_assert_eq!(rs.len(), b.replicas.len(), "duplicate replica");
            prop_assert_eq!(b.replicas.len(), (repl as usize).min(nodes));
            for &n in &b.replicas {
                prop_assert!(n < nodes);
            }
        }
    }

    #[test]
    fn usage_returns_to_zero_after_deleting_everything(
        files in proptest::collection::vec(1u64..5_000, 1..20),
    ) {
        let mut fs: Dfs<u32> = Dfs::new(cfg(8, 256, 3));
        for (i, &len) in files.iter().enumerate() {
            fs.create(format!("/f{i}"), len, i as u32).unwrap();
        }
        let used_mid = fs.total_used();
        let expect: u64 = files.iter().map(|l| l * 3).sum();
        prop_assert_eq!(used_mid, expect);
        for i in 0..files.len() {
            let payload = fs.delete(&format!("/f{i}")).unwrap();
            prop_assert_eq!(payload, i as u32);
        }
        prop_assert_eq!(fs.total_used(), 0);
    }

    #[test]
    fn capacity_is_never_exceeded(
        files in proptest::collection::vec(1u64..400, 1..40),
        cap in 200u64..2_000,
    ) {
        let mut fs: Dfs<()> = Dfs::new(DfsConfig {
            block_size: 128,
            replication: 2,
            nodes: 4,
            capacity_per_node: Some(cap),
        });
        for (i, &len) in files.iter().enumerate() {
            match fs.create(format!("/f{i}"), len, ()) {
                Ok(_) => {}
                Err(DfsError::OutOfSpace { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
            for node in 0..4 {
                prop_assert!(fs.used_bytes(node) <= cap, "node {node} over capacity");
            }
        }
    }

    #[test]
    fn placement_spreads_load(
        n_files in 16usize..64,
    ) {
        let mut fs: Dfs<()> = Dfs::new(cfg(8, 1000, 1));
        for i in 0..n_files {
            fs.create(format!("/f{i}"), 100, ()).unwrap();
        }
        let loads: Vec<u64> = (0..8).map(|n| fs.used_bytes(n)).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // Round-robin placement: at most one file of difference.
        prop_assert!(max - min <= 100, "skewed placement: {loads:?}");
    }
}
