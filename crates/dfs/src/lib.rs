//! # dfs — an HDFS-like distributed filesystem model
//!
//! Provides what the MapReduce/Hive stack needs from HDFS:
//!
//! * a namenode: path → file metadata (length, blocks, replica placement),
//! * block splitting at the configured block size (256 MB at paper scale;
//!   scaled with the similitude factor so *block counts per file* match
//!   paper scale exactly — that is what drives map-task counts),
//! * round-robin replica placement with per-node usage accounting and an
//!   optional capacity limit (Hive's Q9 at 16 TB died on disk space; the
//!   same failure is injected here),
//! * typed in-memory payloads (`Dfs<P>` is generic: the Hive layer stores
//!   real `RcFile`s and text blobs).
//!
//! Timing is *not* charged here — readers (map tasks) charge their own I/O
//! through the `cluster` resources; this crate is the metadata plane.

#![forbid(unsafe_code)]

use cluster::NodeId;
use std::collections::HashMap;

/// Filesystem configuration.
#[derive(Clone, Debug)]
pub struct DfsConfig {
    pub block_size: u64,
    pub replication: u32,
    pub nodes: usize,
    /// Optional per-node capacity in bytes (base data + scratch). `None`
    /// disables space accounting.
    pub capacity_per_node: Option<u64>,
}

impl DfsConfig {
    pub fn from_params(p: &cluster::Params) -> DfsConfig {
        DfsConfig {
            block_size: p.hdfs_block_size,
            replication: p.hdfs_replication,
            nodes: p.nodes,
            capacity_per_node: None,
        }
    }
}

/// One block of a file.
#[derive(Clone, Debug)]
pub struct BlockInfo {
    pub id: u64,
    pub len: u64,
    /// Nodes holding a replica (first = primary).
    pub replicas: Vec<NodeId>,
}

/// File metadata.
#[derive(Clone, Debug)]
pub struct FileMeta {
    pub path: String,
    pub len: u64,
    pub blocks: Vec<BlockInfo>,
}

struct FileEntry<P> {
    meta: FileMeta,
    payload: P,
}

/// Error cases surfaced to engines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfsError {
    /// Per-node capacity exhausted (the Q9-at-16TB failure).
    OutOfSpace {
        node: NodeId,
    },
    NotFound(String),
    AlreadyExists(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::OutOfSpace { node } => {
                write!(f, "node {node} out of disk space")
            }
            DfsError::NotFound(p) => write!(f, "no such file: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
        }
    }
}

impl std::error::Error for DfsError {}

/// The filesystem: namenode state + payload store.
pub struct Dfs<P> {
    pub config: DfsConfig,
    files: HashMap<String, FileEntry<P>>,
    next_block: u64,
    rr_cursor: usize,
    used: Vec<u64>,
    /// Scratch space (MapReduce spills / intermediates) per node.
    scratch: Vec<u64>,
}

impl<P> Dfs<P> {
    pub fn new(config: DfsConfig) -> Self {
        let nodes = config.nodes;
        Dfs {
            config,
            files: HashMap::new(),
            next_block: 0,
            rr_cursor: 0,
            used: vec![0; nodes],
            scratch: vec![0; nodes],
        }
    }

    /// Create a file of `len` logical bytes holding `payload`. Splits into
    /// blocks and places `replication` replicas round-robin. A zero-length
    /// file still gets one (empty) block — Hadoop launches a map task for
    /// it, which is the Q1 empty-bucket phenomenon.
    pub fn create(
        &mut self,
        path: impl Into<String>,
        len: u64,
        payload: P,
    ) -> Result<&FileMeta, DfsError> {
        let path = path.into();
        if self.files.contains_key(&path) {
            return Err(DfsError::AlreadyExists(path));
        }
        let n_blocks = if len == 0 {
            1
        } else {
            len.div_ceil(self.config.block_size)
        };
        let mut blocks = Vec::with_capacity(n_blocks as usize);
        let mut remaining = len;
        for _ in 0..n_blocks {
            let blen = remaining.min(self.config.block_size);
            remaining -= blen;
            let replicas = self.place_replicas(blen)?;
            blocks.push(BlockInfo {
                id: self.next_block,
                len: blen,
                replicas,
            });
            self.next_block += 1;
        }
        let meta = FileMeta {
            path: path.clone(),
            len,
            blocks,
        };
        self.files.insert(path.clone(), FileEntry { meta, payload });
        Ok(&self.files[&path].meta)
    }

    fn place_replicas(&mut self, blen: u64) -> Result<Vec<NodeId>, DfsError> {
        let n = self.config.nodes;
        let r = (self.config.replication as usize).min(n);
        let mut replicas = Vec::with_capacity(r);
        for i in 0..r {
            let node = (self.rr_cursor + i) % n;
            if let Some(cap) = self.config.capacity_per_node {
                if self.used[node] + self.scratch[node] + blen > cap {
                    return Err(DfsError::OutOfSpace { node });
                }
            }
            replicas.push(node);
        }
        for &node in &replicas {
            self.used[node] += blen;
        }
        self.rr_cursor = (self.rr_cursor + 1) % n;
        Ok(replicas)
    }

    pub fn meta(&self, path: &str) -> Result<&FileMeta, DfsError> {
        self.files
            .get(path)
            .map(|e| &e.meta)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    pub fn payload(&self, path: &str) -> Result<&P, DfsError> {
        self.files
            .get(path)
            .map(|e| &e.payload)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    pub fn delete(&mut self, path: &str) -> Result<P, DfsError> {
        let entry = self
            .files
            .remove(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        for b in &entry.meta.blocks {
            for &node in &b.replicas {
                self.used[node] = self.used[node].saturating_sub(b.len);
            }
        }
        Ok(entry.payload)
    }

    /// List paths with a given prefix (a "directory" listing).
    pub fn list(&self, prefix: &str) -> Vec<&FileMeta> {
        let mut out: Vec<&FileMeta> = self
            .files
            .values()
            .filter(|e| e.meta.path.starts_with(prefix))
            .map(|e| &e.meta)
            .collect();
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    /// Reserve scratch space on a node (MapReduce spill / intermediate
    /// output). Fails when the node's disks are full — how Hive's Q9 died.
    pub fn reserve_scratch(&mut self, node: NodeId, bytes: u64) -> Result<(), DfsError> {
        if let Some(cap) = self.config.capacity_per_node {
            if self.used[node] + self.scratch[node] + bytes > cap {
                return Err(DfsError::OutOfSpace { node });
            }
        }
        self.scratch[node] += bytes;
        Ok(())
    }

    /// Release scratch space (job finished).
    pub fn release_scratch(&mut self, node: NodeId, bytes: u64) {
        self.scratch[node] = self.scratch[node].saturating_sub(bytes);
    }

    pub fn used_bytes(&self, node: NodeId) -> u64 {
        self.used[node] + self.scratch[node]
    }

    /// Does `node` hold a replica of `block`? (map-task locality)
    pub fn is_local(&self, block: &BlockInfo, node: NodeId) -> bool {
        block.replicas.contains(&node)
    }

    pub fn total_used(&self) -> u64 {
        self.used.iter().chain(self.scratch.iter()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize, block: u64, cap: Option<u64>) -> DfsConfig {
        DfsConfig {
            block_size: block,
            replication: 3,
            nodes,
            capacity_per_node: cap,
        }
    }

    #[test]
    fn splits_into_blocks() {
        let mut fs: Dfs<()> = Dfs::new(cfg(4, 100, None));
        let meta = fs
            .create("/t/f1", 250, ())
            .expect("no capacity limit configured");
        assert_eq!(meta.blocks.len(), 3);
        assert_eq!(meta.blocks[0].len, 100);
        assert_eq!(meta.blocks[2].len, 50);
        assert_eq!(meta.blocks[0].replicas.len(), 3);
    }

    #[test]
    fn empty_file_has_one_empty_block() {
        let mut fs: Dfs<()> = Dfs::new(cfg(4, 100, None));
        let meta = fs
            .create("/t/empty", 0, ())
            .expect("no capacity limit configured");
        assert_eq!(meta.blocks.len(), 1);
        assert_eq!(meta.blocks[0].len, 0);
    }

    #[test]
    fn replication_respects_node_count() {
        let mut fs: Dfs<()> = Dfs::new(cfg(2, 100, None));
        let meta = fs
            .create("/f", 10, ())
            .expect("no capacity limit configured");
        assert_eq!(meta.blocks[0].replicas.len(), 2);
    }

    #[test]
    fn usage_accounting_and_delete() {
        let mut fs: Dfs<()> = Dfs::new(cfg(4, 100, None));
        fs.create("/f", 200, ())
            .expect("no capacity limit configured");
        assert_eq!(fs.total_used(), 200 * 3);
        fs.delete("/f").expect("/f was just created");
        assert_eq!(fs.total_used(), 0);
        assert!(matches!(fs.delete("/f"), Err(DfsError::NotFound(_))));
    }

    #[test]
    fn out_of_space_on_create_and_scratch() {
        let mut fs: Dfs<()> = Dfs::new(cfg(2, 100, Some(250)));
        fs.create("/a", 100, ()).expect("100 of 250 fits"); // 100 on both nodes (repl 2)
        fs.reserve_scratch(0, 100).expect("200 of 250 fits");
        assert_eq!(
            fs.reserve_scratch(0, 100),
            Err(DfsError::OutOfSpace { node: 0 })
        );
        // create also fails once a node is full
        assert!(matches!(
            fs.create("/b", 200, ()),
            Err(DfsError::OutOfSpace { .. })
        ));
        fs.release_scratch(0, 100);
        fs.create("/b", 100, ()).expect("space was released");
    }

    #[test]
    fn listing_by_prefix_sorted() {
        let mut fs: Dfs<u32> = Dfs::new(cfg(4, 100, None));
        fs.create("/warehouse/lineitem/b2", 1, 2)
            .expect("fresh path");
        fs.create("/warehouse/lineitem/b1", 1, 1)
            .expect("fresh path");
        fs.create("/warehouse/orders/b1", 1, 3).expect("fresh path");
        let l = fs.list("/warehouse/lineitem/");
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].path, "/warehouse/lineitem/b1");
        assert_eq!(
            *fs.payload("/warehouse/lineitem/b2")
                .expect("b2 was created above"),
            2
        );
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut fs: Dfs<()> = Dfs::new(cfg(4, 100, None));
        fs.create("/f", 1, ()).expect("fresh path");
        assert!(matches!(
            fs.create("/f", 1, ()),
            Err(DfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn locality_check() {
        let mut fs: Dfs<()> = Dfs::new(cfg(4, 100, None));
        let meta = fs
            .create("/f", 10, ())
            .expect("no capacity limit configured")
            .clone();
        let b = &meta.blocks[0];
        let local_count = (0..4).filter(|&n| fs.is_local(b, n)).count();
        assert_eq!(local_count, 3);
    }
}
