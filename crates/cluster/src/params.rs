//! Hardware spec + calibration constants, with similitude scaling.
//!
//! Every field is annotated as **`[scales]`** (divided by `k` in
//! [`Params::scaled`]) or **``[fixed]``** (invariant). Rule of thumb: anything
//! measured in bytes, bytes/sec, or rows/sec scales; anything measured in
//! plain seconds (a latency or startup cost) or as a count (nodes, cores,
//! slots, disks) is fixed.

pub const KB: u64 = 1 << 10;
pub const MB: u64 = 1 << 20;
pub const GB: u64 = 1 << 30;

/// All tunables of the simulated testbed.
#[derive(Clone, Debug)]
pub struct Params {
    // ---- topology `[fixed]` ------------------------------------------------
    /// Worker/server nodes participating in data processing.
    pub nodes: usize,
    /// Hyper-threaded cores per node (2 × quad-core Xeon L5630 with HT).
    pub cores_per_node: u32,
    /// Data disks per node (paper: 8 of the 10 disks hold data).
    pub disks_per_node: u32,

    // ---- capacities `[scale]` ----------------------------------------------
    /// Sequential bandwidth of one disk, bytes/sec. The paper reports the
    /// 8-disk aggregate as ≈ 800 MB/s, i.e. ≈ 100 MB/s/disk.
    pub disk_seq_bw: f64,
    /// NIC bandwidth per direction, bytes/sec (1 Gbit ≈ 125 MB/s; we use an
    /// effective 110 MB/s to account for TCP/framing overhead).
    pub nic_bw: f64,
    /// Main memory per node (32 GB).
    pub mem_per_node: u64,

    // ---- device latencies `[fixed]` ----------------------------------------
    /// Positioning time of one random disk I/O (10k RPM SAS ≈ 5 ms).
    pub disk_seek: f64,
    /// One-way network latency for a small message through the switch.
    pub net_latency: f64,

    // ---- HDFS / MapReduce ------------------------------------------------
    /// HDFS block size `[scale]` (paper: 256 MB).
    pub hdfs_block_size: u64,
    /// HDFS replication factor `[fixed]` (paper: 3).
    pub hdfs_replication: u32,
    /// Effective HDFS sequential read bandwidth per node `[scale]`. The paper
    /// measured ≈ 400 MB/s/node with testdfsio vs ≈ 800 MB/s raw — HDFS
    /// halves the raw disk bandwidth.
    pub hdfs_read_bw_per_node: f64,
    /// Client-observed HDFS ingest rate per node `[scale]`: each byte is
    /// pipelined to 3 replicas over the shared 1 GbE fabric with
    /// checksumming, so the end-to-end rate is far below the NIC rate.
    /// Calibrated against Table 2 (Hive loads 250 GB in ≈ 38 min over two
    /// write-bound phases).
    pub hdfs_write_bw_per_node: f64,
    /// Map slots per node `[fixed]` (paper: 8 map + 8 reduce per node).
    pub map_slots_per_node: u32,
    /// Reduce slots per node `[fixed]`.
    pub reduce_slots_per_node: u32,
    /// Startup overhead of one map/reduce task (JVM spawn, split fetch)
    /// `[fixed]`. The paper observes ≈ 6 s for map tasks over empty files.
    pub task_startup: f64,
    /// Fixed per-MapReduce-job overhead (job setup/teardown at the
    /// jobtracker) `[fixed]`.
    pub job_overhead: f64,
    /// Max JVM heap per task `[scale]` (paper: 2 GB).
    pub task_mem: u64,
    /// Hive's "small" filesystem-only job (merging query output into fewer
    /// files) `[fixed]`. Paper: ≈ 50 s at every scale factor (Q22).
    pub hive_fs_job: f64,
    /// Time until a map-side join attempt fails with a Java heap error and
    /// the backup common-join task launches `[fixed]`. Paper: ≈ 400 s (Q22).
    pub mapjoin_fail_time: f64,

    // ---- storage format CPU costs ----------------------------------------
    /// RCFile decompress+decode rate per task, compressed bytes/sec `[scale]`.
    /// The paper observed ≈ 70 MB/s/task and CPU-bound map tasks.
    pub rcfile_decode_bw: f64,
    /// RCFile encode (compress) rate per task, uncompressed bytes/sec
    /// `[scale]` — drives the text→RCFile load conversion cost.
    pub rcfile_encode_bw: f64,
    /// GZIP-like compression ratio achieved on TPC-H RCFile data `[fixed]`
    /// (ratio = compressed/uncompressed ≈ 0.35).
    pub rcfile_compression: f64,
    /// Plain-text scan rate per task, bytes/sec `[scale]`.
    pub text_scan_bw: f64,
    /// Colblock decompress+decode rate per task, compressed bytes/sec
    /// `[scale]`. The vectorized block decoder amortizes per-value dispatch
    /// over whole chunks (RLE/dictionary runs decode in bulk), so it lands
    /// well above RCFile's row-at-a-time 70 MB/s — the "what would modern
    /// columnar formats change" ablation knob.
    pub colblock_decode_bw: f64,
    /// Colblock encode rate per task, uncompressed bytes/sec `[scale]` —
    /// drives the text→colblock load conversion cost (statistics + encoding
    /// selection make writes somewhat slower than reads, but still faster
    /// than RCFile's per-value compressor path).
    pub colblock_encode_bw: f64,
    /// Hive row-processing rate per task (deserialize + operator work),
    /// rows/sec `[scale]`. Hive 0.7's row-at-a-time SerDe path is slow; this
    /// is calibrated so Q1's non-empty-bucket map tasks take ≈ 75 s at
    /// SF 250 (§3.3.4.2).
    pub hive_rows_per_sec: f64,
    /// Rate at which a map task loads a distributed-cache hash table into
    /// memory, bytes/sec `[scale]` (map-side join per-task overhead).
    pub mapjoin_load_bw: f64,

    // ---- PDW -------------------------------------------------------------
    /// SQL Server sequential table-scan bandwidth per node `[scale]`
    /// (the paper: raw disks deliver ≈ 800 MB/s/node; SQL Server's scans
    /// are close to raw).
    pub pdw_scan_bw_per_node: f64,
    /// DMS shuffle effective bandwidth per node `[scale]` (bounded by the
    /// 1 GbE NIC; DMS adds some framing overhead).
    pub dms_bw_per_node: f64,
    /// Partitions (distributions) per node `[fixed]` (paper: 8 → 128 total).
    pub pdw_distributions_per_node: u32,
    /// SQL Server scan+filter rate per execution unit, rows/sec `[scale]`
    /// (calibrated against PDW's Q6 ≈ 5 s at SF 250).
    pub pdw_scan_rows_per_sec: f64,
    /// Hash-join probe+build rate per execution unit, rows/sec `[scale]`.
    pub pdw_join_rows_per_sec: f64,
    /// Aggregate-expression evaluations per second per execution unit
    /// `[scale]` (Q1 folds 8 expressions per row; calibrated against its
    /// ≈ 54 s at SF 250).
    pub pdw_agg_terms_per_sec: f64,
    /// Fixed per-DMS-step overhead (plan distribution, step setup) `[fixed]`.
    pub pdw_step_overhead: f64,
    /// PDW load rate per node via dwloader `[scale]`. Calibrated from
    /// Table 2 (PDW loads slower than Hive: 79 vs 38 min at 250 GB).
    pub pdw_load_bw_per_node: f64,
    /// Hive bulk load (local text -> HDFS copy) rate per node `[scale]`.
    pub hive_copy_bw_per_node: f64,

    // ---- OLTP / YCSB -----------------------------------------------------
    /// Bytes SQL Server reads per buffer-pool miss [fixed even under
    /// `scaled`; see `scaled_ycsb`] (paper: 8 KB).
    pub sql_read_per_miss: u64,
    /// Bytes MongoDB reads per page miss `[fixed]` (paper: ≈ 32 KB — it
    /// "wastes disk bandwidth reading data that is not needed").
    pub mongo_read_per_miss: u64,
    /// CPU time to process one simple OLTP request (parse/plan/execute a
    /// single-row read or update) `[fixed]`.
    pub oltp_cpu_per_op: f64,
    /// Extra CPU for BSON serialization per KB of document `[fixed]`.
    pub bson_cpu_per_kb: f64,
    /// Fraction of buffer-pool memory available to the OLTP engine `[fixed]`
    /// (SQL Server was configured with a 24 GB buffer pool of 32 GB RAM).
    pub bufpool_frac: f64,
    /// SQL Server checkpoint interval `[fixed]`. The paper's 30-minute runs
    /// average over dozens of checkpoints; the short simulated measure
    /// windows must contain at least one for the steady-state mix to be
    /// representative, hence a shorter interval than the server default.
    pub checkpoint_interval: f64,
    /// Fraction of disk bandwidth consumed while a checkpoint is writing
    /// `[fixed]` (paper: throughput halves during checkpoints).
    pub checkpoint_write_frac: f64,
    /// Mongo journal flush interval `[fixed]` (100 ms in the paper; journal
    /// disabled for the experiments, kept for the ablation).
    pub journal_flush_interval: f64,
    /// mongos routing hop latency `[fixed]`.
    pub mongos_hop: f64,
    /// SQL-CS insert rate per node during loading `[fixed]` — each insert a
    /// separate transaction (§3.4.2: 146 min for 640 M records).
    pub sql_insert_rate_per_node: f64,
    /// Mongo-AS insert rate per node with pre-split chunks `[fixed]`
    /// (§3.4.2: 114 min).
    pub mongo_as_insert_rate_per_node: f64,
    /// Mongo-CS insert rate per node `[fixed]` (§3.4.2: 45 min — no mongos
    /// hop, no config metadata).
    pub mongo_cs_insert_rate_per_node: f64,
    /// Load-time multiplier without pre-split chunks (chunk splits +
    /// balancer migrations during the load) `[fixed]`.
    pub mongo_migration_penalty: f64,
}

impl Params {
    /// The paper's 16-node DSS testbed at full (paper) scale.
    pub fn paper_dss() -> Params {
        Params {
            nodes: 16,
            cores_per_node: 16,
            disks_per_node: 8,
            disk_seq_bw: 100.0 * MB as f64,
            nic_bw: 110.0 * MB as f64,
            mem_per_node: 32 * GB,
            disk_seek: 0.005,
            net_latency: 0.000_2,
            hdfs_block_size: 256 * MB,
            hdfs_replication: 3,
            hdfs_read_bw_per_node: 400.0 * MB as f64,
            hdfs_write_bw_per_node: 14.0 * MB as f64,
            map_slots_per_node: 8,
            reduce_slots_per_node: 8,
            task_startup: 6.0,
            job_overhead: 8.0,
            task_mem: 2 * GB,
            hive_fs_job: 50.0,
            mapjoin_fail_time: 400.0,
            rcfile_decode_bw: 70.0 * MB as f64,
            rcfile_encode_bw: 90.0 * MB as f64,
            rcfile_compression: 0.35,
            text_scan_bw: 200.0 * MB as f64,
            colblock_decode_bw: 400.0 * MB as f64,
            colblock_encode_bw: 150.0 * MB as f64,
            hive_rows_per_sec: 160_000.0,
            mapjoin_load_bw: 250.0 * MB as f64,
            pdw_scan_bw_per_node: 800.0 * MB as f64,
            dms_bw_per_node: 100.0 * MB as f64,
            pdw_distributions_per_node: 8,
            pdw_scan_rows_per_sec: 4.0e6,
            pdw_join_rows_per_sec: 1.8e6,
            pdw_agg_terms_per_sec: 2.6e6,
            pdw_step_overhead: 0.5,
            pdw_load_bw_per_node: 55.0 * MB as f64,
            hive_copy_bw_per_node: 115.0 * MB as f64,
            sql_read_per_miss: 8 * KB,
            mongo_read_per_miss: 32 * KB,
            oltp_cpu_per_op: 0.000_05,
            bson_cpu_per_kb: 0.000_01,
            bufpool_frac: 0.75,
            checkpoint_interval: 8.0,
            checkpoint_write_frac: 0.5,
            journal_flush_interval: 0.1,
            mongos_hop: 0.000_15,
            sql_insert_rate_per_node: 9_130.0,
            mongo_as_insert_rate_per_node: 11_700.0,
            mongo_cs_insert_rate_per_node: 29_630.0,
            mongo_migration_penalty: 2.5,
        }
    }

    /// The paper's YCSB testbed: 8 server nodes (8 more run clients, which
    /// we model as open/closed-loop generators rather than hardware).
    pub fn paper_ycsb() -> Params {
        Params {
            nodes: 8,
            ..Params::paper_dss()
        }
    }

    /// YCSB-side similitude scaling: only the record count (done by the
    /// harness) and the memory capacity shrink; per-operation costs, page
    /// sizes, IOPS, and bandwidths stay at hardware scale, so latencies and
    /// saturation throughputs are directly comparable to the paper's.
    pub fn scaled_ycsb(&self, k: f64) -> Params {
        assert!(k >= 1.0, "scale factor must be >= 1 (got {k})");
        Params {
            mem_per_node: scale_bytes(self.mem_per_node, k),
            ..self.clone()
        }
    }

    /// Similitude scaling: divide every capacity/throughput field by `k`,
    /// keep latencies / overheads / counts fixed. See the crate docs.
    pub fn scaled(&self, k: f64) -> Params {
        assert!(k >= 1.0, "scale factor must be >= 1 (got {k})");
        Params {
            // capacities and throughputs scale
            disk_seq_bw: self.disk_seq_bw / k,
            nic_bw: self.nic_bw / k,
            mem_per_node: scale_bytes(self.mem_per_node, k),
            hdfs_block_size: scale_bytes(self.hdfs_block_size, k),
            hdfs_read_bw_per_node: self.hdfs_read_bw_per_node / k,
            hdfs_write_bw_per_node: self.hdfs_write_bw_per_node / k,
            task_mem: scale_bytes(self.task_mem, k),
            rcfile_decode_bw: self.rcfile_decode_bw / k,
            rcfile_encode_bw: self.rcfile_encode_bw / k,
            text_scan_bw: self.text_scan_bw / k,
            colblock_decode_bw: self.colblock_decode_bw / k,
            colblock_encode_bw: self.colblock_encode_bw / k,
            hive_rows_per_sec: self.hive_rows_per_sec / k,
            mapjoin_load_bw: self.mapjoin_load_bw / k,
            pdw_scan_rows_per_sec: self.pdw_scan_rows_per_sec / k,
            pdw_join_rows_per_sec: self.pdw_join_rows_per_sec / k,
            pdw_agg_terms_per_sec: self.pdw_agg_terms_per_sec / k,
            pdw_scan_bw_per_node: self.pdw_scan_bw_per_node / k,
            dms_bw_per_node: self.dms_bw_per_node / k,
            pdw_load_bw_per_node: self.pdw_load_bw_per_node / k,
            hive_copy_bw_per_node: self.hive_copy_bw_per_node / k,
            // everything else is fixed
            ..self.clone()
        }
    }

    /// Total map slots across the cluster (paper: 128).
    pub fn total_map_slots(&self) -> u32 {
        self.map_slots_per_node * self.nodes as u32
    }

    /// Total reduce slots across the cluster (paper: 128).
    pub fn total_reduce_slots(&self) -> u32 {
        self.reduce_slots_per_node * self.nodes as u32
    }

    /// Total PDW distributions (paper: 128).
    pub fn total_distributions(&self) -> u32 {
        self.pdw_distributions_per_node * self.nodes as u32
    }

    /// Buffer-pool bytes per node for the OLTP engines.
    pub fn bufpool_bytes(&self) -> u64 {
        (self.mem_per_node as f64 * self.bufpool_frac) as u64
    }

    /// The shared per-format scan-cost table: both engines (and the
    /// three-way storage ablation) price a scan of a given [`ScanFormat`]
    /// through this one lookup, so decode rates can never drift apart
    /// between Hive lowering and the PDW optimizer.
    pub fn format_cost(&self, format: ScanFormat) -> FormatCost {
        match format {
            ScanFormat::Text => FormatCost {
                decode_bw: self.text_scan_bw,
                encode_bw: self.text_scan_bw,
                column_pruned: false,
                block_pruned: false,
            },
            ScanFormat::RcFile => FormatCost {
                decode_bw: self.rcfile_decode_bw,
                encode_bw: self.rcfile_encode_bw,
                column_pruned: true,
                block_pruned: false,
            },
            ScanFormat::ColBlock => FormatCost {
                decode_bw: self.colblock_decode_bw,
                encode_bw: self.colblock_encode_bw,
                column_pruned: true,
                block_pruned: true,
            },
        }
    }
}

/// The storage formats the DSS ablations compare. Engine-neutral on
/// purpose: `hive::StorageFormat` and the PDW colblock scan path both map
/// onto this enum when pricing I/O and decode CPU via
/// [`Params::format_cost`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanFormat {
    /// Delimited text: full-width reads, cheap decode.
    Text,
    /// RCFile row groups: column-pruned reads, CPU-heavy decode.
    RcFile,
    /// Columnar blocks: column-pruned reads, block-level min/max pruning,
    /// vectorized decode.
    ColBlock,
}

/// What one storage format costs and affords, straight from [`Params`].
/// `decode_bw`/`encode_bw` are per-task bytes/sec (`[scale]`d fields); the
/// two flags say which read-volume reductions the format supports.
#[derive(Clone, Copy, Debug)]
pub struct FormatCost {
    pub decode_bw: f64,
    pub encode_bw: f64,
    /// Readers can fetch only the referenced columns.
    pub column_pruned: bool,
    /// Readers can skip whole blocks via min/max statistics.
    pub block_pruned: bool,
}

fn scale_bytes(b: u64, k: f64) -> u64 {
    ((b as f64 / k).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_paper() {
        let p = Params::paper_dss();
        assert_eq!(p.nodes, 16);
        assert_eq!(p.total_map_slots(), 128);
        assert_eq!(p.total_reduce_slots(), 128);
        assert_eq!(p.total_distributions(), 128);
        assert_eq!(p.hdfs_block_size, 256 * MB);
        assert_eq!(Params::paper_ycsb().nodes, 8);
    }

    #[test]
    fn scaled_identity_at_k1() {
        let p = Params::paper_dss();
        let s = p.scaled(1.0);
        assert_eq!(s.hdfs_block_size, p.hdfs_block_size);
        assert_eq!(s.mem_per_node, p.mem_per_node);
        assert!((s.disk_seq_bw - p.disk_seq_bw).abs() < 1e-6);
    }

    #[test]
    fn scaled_divides_capacities_keeps_fixed() {
        let p = Params::paper_dss();
        let s = p.scaled(1000.0);
        let expect = (256.0 * MB as f64 / 1000.0).round() as u64;
        assert_eq!(s.hdfs_block_size, expect);
        assert!((s.disk_seq_bw - p.disk_seq_bw / 1000.0).abs() < 1.0);
        // fixed quantities unchanged
        assert_eq!(s.nodes, p.nodes);
        assert_eq!(s.task_startup, p.task_startup);
        assert_eq!(s.disk_seek, p.disk_seek);
        assert_eq!(s.hdfs_replication, p.hdfs_replication);
        assert_eq!(s.map_slots_per_node, p.map_slots_per_node);
    }

    #[test]
    fn bandwidth_bound_time_invariant_under_scaling() {
        // The similitude property: (bytes/k) / (bw/k) == bytes / bw.
        let p = Params::paper_dss();
        let k = 437.0;
        let s = p.scaled(k);
        let bytes_paper = 1.5e12; // 1.5 TB
        let bytes_real = bytes_paper / k;
        let t_paper = bytes_paper / p.hdfs_read_bw_per_node;
        let t_real = bytes_real / s.hdfs_read_bw_per_node;
        assert!((t_paper - t_real).abs() / t_paper < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scale factor must be >= 1")]
    fn sub_unit_scale_rejected() {
        Params::paper_dss().scaled(0.5);
    }

    #[test]
    fn format_cost_table_is_consistent_with_fields() {
        let p = Params::paper_dss();
        let text = p.format_cost(ScanFormat::Text);
        let rc = p.format_cost(ScanFormat::RcFile);
        let cb = p.format_cost(ScanFormat::ColBlock);
        assert_eq!(text.decode_bw, p.text_scan_bw);
        assert_eq!(rc.decode_bw, p.rcfile_decode_bw);
        assert_eq!(cb.decode_bw, p.colblock_decode_bw);
        assert_eq!(cb.encode_bw, p.colblock_encode_bw);
        // The paper's trade: RCFile reads less but decodes slower than
        // text; colblock keeps the pruning and recovers the decode rate.
        assert!(rc.column_pruned && !text.column_pruned);
        assert!(rc.decode_bw < text.decode_bw);
        assert!(cb.block_pruned && !rc.block_pruned);
        assert!(cb.decode_bw > rc.decode_bw);
        // Scaling the params scales the table the same way.
        let s = p.scaled(100.0);
        let cb_s = s.format_cost(ScanFormat::ColBlock);
        assert!((cb_s.decode_bw - cb.decode_bw / 100.0).abs() < 1e-6);
    }
}
