//! Cluster topology bound to a simulation: per-node CPU pools, disks, and
//! NIC directions as `simkit` resources, plus charging helpers.

use crate::params::Params;
use simkit::trace::ResKind;
use simkit::{secs, Event, Latch, ResourceId, Sim};

/// Index of a node in the cluster (0-based).
pub type NodeId = usize;

/// Resource handles for one node.
#[derive(Clone, Debug)]
pub struct NodeRes {
    /// k-server CPU pool (k = hyper-threaded cores).
    pub cpu: ResourceId,
    /// One resource per data disk.
    pub disks: Vec<ResourceId>,
    /// Outbound NIC direction.
    pub nic_send: ResourceId,
    /// Inbound NIC direction.
    pub nic_recv: ResourceId,
}

/// A cluster's resources registered with a simulation.
pub struct Cluster {
    pub params: Params,
    pub nodes: Vec<NodeRes>,
}

impl Cluster {
    /// Register all node resources with `sim`.
    pub fn build<W: 'static>(sim: &mut Sim<W>, params: Params) -> Cluster {
        let nodes = (0..params.nodes)
            .map(|n| NodeRes {
                cpu: sim.add_resource_kind(
                    format!("node{n}.cpu"),
                    ResKind::Cpu,
                    params.cores_per_node,
                ),
                disks: (0..params.disks_per_node)
                    .map(|d| sim.add_resource_kind(format!("node{n}.disk{d}"), ResKind::Disk, 1))
                    .collect(),
                nic_send: sim.add_resource_kind(format!("node{n}.nic_tx"), ResKind::Net, 1),
                nic_recv: sim.add_resource_kind(format!("node{n}.nic_rx"), ResKind::Net, 1),
            })
            .collect();
        Cluster { params, nodes }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Charge `cpu_secs` of one core on `node`.
    pub fn cpu<W: 'static>(&self, sim: &mut Sim<W>, node: NodeId, cpu_secs: f64, done: Event<W>) {
        sim.request(self.nodes[node].cpu, secs(cpu_secs), done);
    }

    /// Sequential read of `bytes` from one disk of `node`.
    pub fn disk_read_seq<W: 'static>(
        &self,
        sim: &mut Sim<W>,
        node: NodeId,
        disk: usize,
        bytes: u64,
        done: Event<W>,
    ) {
        let t = bytes as f64 / self.params.disk_seq_bw;
        let d = &self.nodes[node].disks[disk % self.nodes[node].disks.len()];
        sim.request(*d, secs(t), done);
    }

    /// One random I/O of `bytes` (seek + transfer) on one disk of `node`.
    pub fn disk_read_rand<W: 'static>(
        &self,
        sim: &mut Sim<W>,
        node: NodeId,
        disk: usize,
        bytes: u64,
        done: Event<W>,
    ) {
        let t = self.params.disk_seek + bytes as f64 / self.params.disk_seq_bw;
        let d = &self.nodes[node].disks[disk % self.nodes[node].disks.len()];
        sim.request(*d, secs(t), done);
    }

    /// Sequential write (same cost model as a sequential read).
    pub fn disk_write_seq<W: 'static>(
        &self,
        sim: &mut Sim<W>,
        node: NodeId,
        disk: usize,
        bytes: u64,
        done: Event<W>,
    ) {
        self.disk_read_seq(sim, node, disk, bytes, done);
    }

    /// Bulk transfer of `bytes` from `src` to `dst`: occupies the sender's
    /// TX direction and the receiver's RX direction concurrently (each for
    /// `bytes / nic_bw`), completing when both have drained, plus one
    /// propagation latency. A node "transferring" to itself is free.
    pub fn transfer<W: 'static>(
        &self,
        sim: &mut Sim<W>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        done: Event<W>,
    ) {
        if src == dst {
            sim.schedule_in(0, done);
            return;
        }
        let t = secs(bytes as f64 / self.params.nic_bw + self.params.net_latency);
        let latch = Latch::new(2, done);
        let (l1, l2) = (latch.clone(), latch);
        sim.request(
            self.nodes[src].nic_send,
            t,
            Box::new(move |sim, _| l1.count_down(sim)),
        );
        sim.request(
            self.nodes[dst].nic_recv,
            t,
            Box::new(move |sim, _| l2.count_down(sim)),
        );
    }

    /// Total busy seconds across all disks of a node (diagnostics).
    pub fn node_disk_busy<W: 'static>(&self, sim: &Sim<W>, node: NodeId) -> f64 {
        self.nodes[node]
            .disks
            .iter()
            .map(|&d| simkit::as_secs(sim.resource_busy_time(d)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MB;
    use simkit::SimTime;

    struct W {
        finished: Vec<(&'static str, SimTime)>,
    }

    fn mini_params() -> Params {
        Params {
            nodes: 2,
            cores_per_node: 2,
            disks_per_node: 2,
            ..Params::paper_dss()
        }
    }

    #[test]
    fn disk_seq_read_takes_bytes_over_bw() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { finished: vec![] };
        let c = Cluster::build(&mut sim, mini_params());
        c.disk_read_seq(
            &mut sim,
            0,
            0,
            (100.0 * MB as f64) as u64,
            Box::new(|s, w: &mut W| w.finished.push(("read", s.now()))),
        );
        sim.run(&mut w);
        let t = simkit::as_secs(w.finished[0].1);
        assert!(
            (t - 1.0).abs() < 0.01,
            "100MB at 100MB/s should be ~1s, got {t}"
        );
    }

    #[test]
    fn random_read_pays_seek() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { finished: vec![] };
        let c = Cluster::build(&mut sim, mini_params());
        c.disk_read_rand(
            &mut sim,
            0,
            0,
            8 * 1024,
            Box::new(|s, w: &mut W| w.finished.push(("read", s.now()))),
        );
        sim.run(&mut w);
        let t = simkit::as_secs(w.finished[0].1);
        assert!(
            t > 0.005 && t < 0.006,
            "8KB random read ≈ seek-dominated, got {t}"
        );
    }

    #[test]
    fn transfer_charges_both_nics_and_is_free_locally() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { finished: vec![] };
        let c = Cluster::build(&mut sim, mini_params());
        c.transfer(
            &mut sim,
            0,
            1,
            (110.0 * MB as f64) as u64,
            Box::new(|s, w: &mut W| w.finished.push(("xfer", s.now()))),
        );
        c.transfer(
            &mut sim,
            1,
            1,
            u64::MAX / 4,
            Box::new(|s, w: &mut W| w.finished.push(("local", s.now()))),
        );
        sim.run(&mut w);
        let local = w.finished.iter().find(|(n, _)| *n == "local").unwrap().1;
        assert_eq!(local, 0);
        let xfer = w.finished.iter().find(|(n, _)| *n == "xfer").unwrap().1;
        let t = simkit::as_secs(xfer);
        assert!((t - 1.0).abs() < 0.01, "110MB over 110MB/s ≈ 1s, got {t}");
    }

    #[test]
    fn concurrent_transfers_to_same_receiver_queue() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { finished: vec![] };
        let mut p = mini_params();
        p.nodes = 3;
        let c = Cluster::build(&mut sim, p);
        let bytes = (110.0 * MB as f64) as u64;
        for src in 0..2 {
            c.transfer(
                &mut sim,
                src,
                2,
                bytes,
                Box::new(|s, w: &mut W| w.finished.push(("x", s.now()))),
            );
        }
        sim.run(&mut w);
        // Receiver RX is the bottleneck: second transfer completes ~2s.
        let t_last = simkit::as_secs(w.finished.iter().map(|(_, t)| *t).max().unwrap());
        assert!(
            (t_last - 2.0).abs() < 0.05,
            "RX serialization expected, got {t_last}"
        );
    }

    #[test]
    fn cpu_pool_parallelism() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { finished: vec![] };
        let c = Cluster::build(&mut sim, mini_params());
        for _ in 0..4 {
            c.cpu(
                &mut sim,
                0,
                1.0,
                Box::new(|s, w: &mut W| w.finished.push(("cpu", s.now()))),
            );
        }
        sim.run(&mut w);
        // 2 cores, 4 × 1s jobs → makespan 2s.
        let t_last = simkit::as_secs(w.finished.iter().map(|(_, t)| *t).max().unwrap());
        assert!((t_last - 2.0).abs() < 0.01);
    }
}
