//! # cluster — simulated cluster hardware
//!
//! Models the paper's testbed (§3.1): 16 nodes, each with dual quad-core
//! Xeon L5630 (16 hyper-threads), 32 GB RAM, 8 data disks (10k RPM SAS),
//! all connected through a 1 Gbit HP Procurve switch. Plus the calibration
//! constants the paper itself reports (HDFS ≈ 400 MB/s/node, RCFile decode
//! ≈ 70 MB/s/task, 8 KB vs 32 KB reads per buffer miss, ...).
//!
//! ## Similitude scaling
//!
//! Paper-scale runs (up to 16 TB of TPC-H data, 640 M YCSB records) cannot
//! be executed directly; instead [`Params::scaled`] divides every
//! *capacity/throughput* quantity by a factor `k` while keeping every
//! *fixed latency/overhead/count* unchanged. Running real data of size
//! `paper_size / k` against the scaled parameters yields the same simulated
//! times as paper-scale data against unscaled parameters for all
//! bandwidth-bound work, while fixed overheads (task startup, per-request
//! latency) retain their true magnitude — exactly the property that
//! produces the paper's sub-linear scaling observations.
//!
//! ## The execution substrate ([`exec`])
//!
//! [`exec::ClusterExec`] is the **only place hardware time is booked** for
//! the DSS engines (enforced by the `exec-substrate-only` simlint rule):
//! PDW steps and MapReduce shuffles run as [`exec::Phase`]s (flat per-node
//! work volumes), MapReduce map/reduce rounds as [`exec::TaskPhase`]s
//! (slot-scheduled task waves with Hadoop-style retry). Every phase emits
//! a traced `simkit::trace::Span`. ARCHITECTURE.md walks the whole stack.

#![forbid(unsafe_code)]

pub mod exec;
pub mod params;
pub mod topo;

pub use exec::{
    ClusterExec, JobOutcome, JobSpec, MixJob, Phase, ReplanCtx, Replanner, Task, TaskPhase,
    TaskPhaseReport, TaskStep,
};
pub use params::{FormatCost, Params, ScanFormat};
pub use topo::{Cluster, NodeId};
