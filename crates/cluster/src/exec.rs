//! Phase execution: charge a query phase's per-node work against the shared
//! cluster resources on the DES, and emit a [`Span`] for every phase.
//!
//! Engines describe a phase as *work volumes* — bytes to scan, CPU seconds
//! to burn, bytes to ship — and [`ClusterExec`] turns each volume into
//! `simkit` resource requests on the node's disks, CPU pool, and NIC
//! directions. Makespans therefore come out of the event loop (including
//! any queueing behind other requests), not from closed-form `max(io, cpu)`
//! arithmetic, and every phase records where its time went.
//!
//! Two phase styles cover both engines:
//!
//! * **[`Phase`]** — a flat batch of work volumes issued together (PDW's
//!   scans, DMS shuffles, gathers; MapReduce's shuffle). Every request is
//!   traced individually, so the span carries one [`Contrib`] per request.
//! * **[`TaskPhase`]** — *slot-scheduled* tasks (MapReduce's map and reduce
//!   phases): each [`Task`] is pinned to a node, runs its [`TaskStep`]s in
//!   sequence, and holds one of the phase's per-node slots for its whole
//!   life — which is what produces task *waves*. The span aggregates the
//!   phase's service/queue-wait totals per resource kind.
//!
//! ## Work resolution
//!
//! * [`Phase::disk_seq`] — `bytes` of sequential I/O on a node, striped
//!   evenly across all of its disks: each disk serves `bytes/D` at its
//!   `node_bw/D` share, so all disks run concurrently for `bytes/node_bw`.
//! * [`Phase::cpu`] — `lanes` parallel workers of `per_lane_secs` each on
//!   the node's k-core pool (lanes ≤ cores ⇒ no queueing).
//! * [`Phase::net_send`] / [`Phase::net_recv`] — one request per NIC
//!   direction of `bytes / bw`.
//! * [`Phase::gather_recv`] — ingest at the control node's single receive
//!   link; concurrent senders serialize there, which is exactly how a
//!   gather's cost accrues.
//! * [`TaskStep`] variants bind to the node's CPU pool, its individual
//!   disks, its send NIC, or its capacity-1 HDFS ingest link (created on
//!   first use; see [`TaskStep::HdfsRead`]).
//!
//! Phases run serially on one [`ClusterExec`] (the event queue drains
//! between phases), matching PDW's step-at-a-time DSQL plans and
//! MapReduce's map → shuffle → reduce barriers; the resource *accounting*
//! (busy integrals, queue waits) accumulates across the whole run for
//! end-of-query utilization reports.
//!
//! ## Concurrent mixes
//!
//! [`ClusterExec::run_mix`] lifts the serial restriction for *whole jobs*:
//! each [`JobSpec`] is an ordered chain of phases admitted at a seeded
//! arrival offset, and every job's chain advances phase-by-phase (intra-job
//! barriers preserved) while different jobs contend for the same disks,
//! CPU pools, and NICs concurrently. Dispatch inside a resource queue is
//! fair across jobs (each job's requests carry its admission index as a
//! client tag; see `simkit::resource`), and the whole schedule is
//! deterministic: admission order is the canonical sort by
//! `(arrival, name)` — independent of submission order — and ties inside
//! the event loop break on (time, schedule seq), so reruns are
//! byte-identical. Phase spans land in the trace in completion order with
//! `job/phase` names.

use crate::params::Params;
use crate::topo::Cluster;
use simkit::probe::{Probe, ProbeEvent};
use simkit::resource::{report, ResourceReport};
use simkit::trace::{Contrib, ResKind, Span, Trace};
use simkit::{as_secs, secs, Latch, ReqTiming, ResourceId, Sim, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// A unit of work inside a phase, not yet bound to concrete resources.
#[derive(Clone, Debug)]
enum Work {
    /// Sequential disk I/O of `bytes` on `node` at aggregate `node_bw`.
    DiskSeq {
        node: usize,
        bytes: f64,
        node_bw: f64,
    },
    /// `lanes` parallel CPU workers of `per_lane_secs` each on `node`.
    Cpu {
        node: usize,
        per_lane_secs: f64,
        lanes: usize,
    },
    /// Outbound transfer of `bytes` from `node` at `bw`.
    NetSend { node: usize, bytes: f64, bw: f64 },
    /// Inbound transfer of `bytes` into `node` at `bw`.
    NetRecv { node: usize, bytes: f64, bw: f64 },
    /// Ingest of `bytes` at the control node's receive link at `bw`.
    GatherRecv { bytes: f64, bw: f64 },
}

/// Builder for one phase: a named batch of work items issued together
/// after `setup` seconds of fixed overhead.
#[derive(Clone, Debug)]
pub struct Phase {
    name: String,
    node: Option<usize>,
    setup: f64,
    work: Vec<Work>,
}

impl Phase {
    pub fn new(name: impl Into<String>) -> Phase {
        Phase {
            name: name.into(),
            node: None,
            setup: 0.0,
            work: Vec::new(),
        }
    }

    /// The phase's name as given to [`Phase::new`] (mix re-planners inspect
    /// it to recognize e.g. `shuffle:`/`replicate:` movement phases).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fixed setup overhead in seconds.
    pub fn setup_secs(&self) -> f64 {
        self.setup
    }

    /// Pin the phase's span to one node (default: cluster-wide).
    pub fn on_node(mut self, node: usize) -> Phase {
        self.node = Some(node);
        self
    }

    /// Fixed overhead paid before any work is issued (step startup,
    /// round-trip latencies).
    pub fn setup(mut self, secs: f64) -> Phase {
        self.setup += secs;
        self
    }

    /// Sequential I/O of `bytes` on `node`, striped across all its disks
    /// at aggregate bandwidth `node_bw` bytes/sec.
    pub fn disk_seq(&mut self, node: usize, bytes: f64, node_bw: f64) -> &mut Phase {
        if bytes > 0.0 {
            self.work.push(Work::DiskSeq {
                node,
                bytes,
                node_bw,
            });
        }
        self
    }

    /// CPU work on `node`: `lanes` parallel workers, `per_lane_secs` each.
    pub fn cpu(&mut self, node: usize, per_lane_secs: f64, lanes: usize) -> &mut Phase {
        if per_lane_secs > 0.0 && lanes > 0 {
            self.work.push(Work::Cpu {
                node,
                per_lane_secs,
                lanes,
            });
        }
        self
    }

    /// Outbound network transfer from `node`.
    pub fn net_send(&mut self, node: usize, bytes: f64, bw: f64) -> &mut Phase {
        if bytes > 0.0 {
            self.work.push(Work::NetSend { node, bytes, bw });
        }
        self
    }

    /// Inbound network transfer into `node`.
    pub fn net_recv(&mut self, node: usize, bytes: f64, bw: f64) -> &mut Phase {
        if bytes > 0.0 {
            self.work.push(Work::NetRecv { node, bytes, bw });
        }
        self
    }

    /// Ingest `bytes` at the control node's receive link.
    pub fn gather_recv(&mut self, bytes: f64, bw: f64) -> &mut Phase {
        if bytes > 0.0 {
            self.work.push(Work::GatherRecv { bytes, bw });
        }
        self
    }
}

// ---------------------------------------------------------------------------
// Slot-scheduled task phases (the MapReduce execution model)
// ---------------------------------------------------------------------------

/// One sequential step of a slot-scheduled [`Task`].
///
/// Unlike [`Phase`] work volumes, zero-sized steps are *not* elided: a
/// zero-byte read still enqueues on the (possibly busy) ingest link, which
/// is how an empty-file map task can stall behind a neighbour's full read.
#[derive(Clone, Debug)]
pub enum TaskStep {
    /// Fixed latency (task startup, injected timeouts); holds no resource.
    Delay { secs: f64 },
    /// Read `bytes` through the node's shared HDFS ingest link at `bw`
    /// bytes/sec. The link is a capacity-1 resource distinct from the raw
    /// disks (the paper's testdfsio measured ~400 MB/s/node aggregate vs
    /// ~800 MB/s raw), so concurrent readers on one node serialize.
    HdfsRead { bytes: u64, bw: f64 },
    /// One core of the node's CPU pool for `secs`.
    Cpu { secs: f64 },
    /// Sequential write of `bytes` to local disk `disk` (modulo the node's
    /// disk count) at the cluster's sequential disk bandwidth.
    DiskWrite { disk: usize, bytes: u64 },
    /// Replicated HDFS output write: the local disk write of `bytes` and
    /// the replication traffic (`net_bytes` on the node's send NIC at
    /// `net_bw`) run concurrently; the step completes when both drain.
    HdfsWrite {
        disk: usize,
        bytes: u64,
        net_bytes: u64,
        net_bw: f64,
    },
}

/// A slot-scheduled task: pinned to one node (modulo cluster size), running
/// its steps in order while holding one of the phase's per-node slots for
/// its entire life.
#[derive(Clone, Debug)]
pub struct Task {
    node: usize,
    steps: Vec<TaskStep>,
    fail_wasting: Option<f64>,
}

impl Task {
    pub fn on(node: usize) -> Task {
        Task {
            node,
            steps: Vec::new(),
            fail_wasting: None,
        }
    }

    /// Append one step to the task's execution chain.
    pub fn step(mut self, step: TaskStep) -> Task {
        self.steps.push(step);
        self
    }

    /// Inject one failure: the first attempt burns `secs` of pure delay
    /// while holding its slot (the half-done work a dying worker throws
    /// away), then releases the slot and re-enqueues a fresh attempt at
    /// the back of the node's queue — Hadoop's task-level retry.
    pub fn fail_once_wasting(mut self, secs: f64) -> Task {
        self.fail_wasting = Some(secs);
        self
    }
}

/// A named batch of [`Task`]s dispatched FIFO in task order onto per-node
/// slot pools, after `setup` seconds of fixed overhead.
#[derive(Clone, Debug)]
pub struct TaskPhase {
    name: String,
    setup: f64,
    slots_per_node: u32,
    tasks: Vec<Task>,
}

impl TaskPhase {
    pub fn new(name: impl Into<String>, slots_per_node: u32) -> TaskPhase {
        TaskPhase {
            name: name.into(),
            setup: 0.0,
            slots_per_node,
            tasks: Vec::new(),
        }
    }

    /// Fixed overhead paid before any task is dispatched (job submission,
    /// distributed-cache setup).
    pub fn setup(mut self, secs: f64) -> TaskPhase {
        self.setup += secs;
        self
    }

    /// Append one task (dispatch order is task order).
    pub fn task(&mut self, task: Task) -> &mut TaskPhase {
        self.tasks.push(task);
        self
    }
}

/// Outcome of [`ClusterExec::run_tasks`]. The phase's [`Span`] goes to the
/// trace like any other phase.
#[derive(Clone, Copy, Debug)]
pub struct TaskPhaseReport {
    /// Absolute sim time in seconds when the last task completed (equal to
    /// phase start + setup for an empty phase).
    pub end_secs: f64,
    /// Same instant in integer nanoseconds — use this for exact arithmetic
    /// (e.g. job-relative offsets on a shared executor).
    pub end: SimTime,
    /// Tasks that failed once and were re-run.
    pub retries: u32,
}

type Thunk = Box<dyn FnOnce(&mut Sim<()>)>;

/// A per-node pool of task slots. A slot is held for a task's whole life,
/// which is what produces task *waves*; waiting tasks queue FIFO.
struct SlotPool {
    free: u32,
    queue: VecDeque<Thunk>,
}

impl SlotPool {
    fn new(slots: u32) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(SlotPool {
            free: slots,
            queue: VecDeque::new(),
        }))
    }

    fn acquire(pool: &Rc<RefCell<Self>>, sim: &mut Sim<()>, run: Thunk) {
        let to_run = {
            let mut p = pool.borrow_mut();
            if p.free > 0 {
                p.free -= 1;
                Some(run)
            } else {
                p.queue.push_back(run);
                None
            }
        };
        if let Some(t) = to_run {
            run_now(sim, t);
        }
    }

    fn release(pool: &Rc<RefCell<Self>>, sim: &mut Sim<()>) {
        let next = {
            let mut p = pool.borrow_mut();
            match p.queue.pop_front() {
                Some(t) => Some(t),
                None => {
                    p.free += 1;
                    None
                }
            }
        };
        if let Some(t) = next {
            run_now(sim, t);
        }
    }
}

fn run_now(sim: &mut Sim<()>, t: Thunk) {
    // Schedule at now to keep the event-loop borrow discipline simple.
    sim.schedule_in(0, Box::new(move |sim, _| t(sim)));
}

/// A [`TaskStep`] bound to concrete resources and service times.
#[derive(Clone)]
enum BoundStep {
    Delay(SimTime),
    Acquire(ResourceId, SimTime),
    /// Two concurrent requests; the step completes when both drain.
    ForkTwo([(ResourceId, SimTime); 2]),
}

#[derive(Clone)]
struct BoundTask {
    node: usize,
    steps: Vec<BoundStep>,
    fail_wasting: Option<SimTime>,
}

/// Run a task's remaining steps in sequence, then `done`.
fn run_steps(sim: &mut Sim<()>, mut steps: std::vec::IntoIter<BoundStep>, done: Thunk) {
    let Some(step) = steps.next() else {
        done(sim);
        return;
    };
    match step {
        BoundStep::Delay(t) => sim.after(t, move |sim, _| run_steps(sim, steps, done)),
        BoundStep::Acquire(r, t) => {
            sim.request(r, t, Box::new(move |sim, _| run_steps(sim, steps, done)))
        }
        BoundStep::ForkTwo([(r1, t1), (r2, t2)]) => {
            let fin = Latch::with(2, move |sim: &mut Sim<()>, _| run_steps(sim, steps, done));
            let f1 = fin.clone();
            sim.request(r1, t1, Box::new(move |sim, _| f1.count_down(sim)));
            sim.request(r2, t2, Box::new(move |sim, _| fin.count_down(sim)));
        }
    }
}

/// Build a task's execution thunk: run the chain, release the slot at the
/// end. A failing attempt wastes its delay, releases the slot, and
/// re-enqueues a fresh attempt (counted in `retries`).
fn task_body(task: BoundTask, pool: Rc<RefCell<SlotPool>>, retries: Rc<Cell<u32>>) -> Thunk {
    Box::new(move |sim: &mut Sim<()>| {
        let node = task.node;
        sim.emit_probe(ProbeEvent::TaskStarted {
            at: sim.now(),
            node,
        });
        if let Some(wasted) = task.fail_wasting {
            sim.after(wasted, move |sim, _| {
                retries.set(retries.get() + 1);
                sim.emit_probe(ProbeEvent::TaskRetried {
                    at: sim.now(),
                    node,
                });
                let fresh = BoundTask {
                    fail_wasting: None,
                    ..task
                };
                let retry = task_body(fresh, pool.clone(), retries);
                SlotPool::release(&pool, sim);
                SlotPool::acquire(&pool, sim, retry);
            });
            return;
        }
        run_steps(
            sim,
            task.steps.into_iter(),
            Box::new(move |sim| {
                sim.emit_probe(ProbeEvent::TaskFinished {
                    at: sim.now(),
                    node,
                });
                SlotPool::release(&pool, sim)
            }),
        );
    })
}

/// One job in a concurrent mix: a named, ordered chain of [`Phase`]s
/// admitted at `arrival_secs` (relative to [`ClusterExec::run_mix`] start).
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub name: String,
    pub arrival_secs: f64,
    pub phases: Vec<Phase>,
}

/// Completion record for one job of a mix, in canonical
/// `(arrival, name)` order regardless of submission order.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    pub name: String,
    /// Admission offset relative to mix start, as submitted.
    pub arrival_secs: f64,
    /// Absolute sim time (seconds) when the job's last phase completed.
    pub end_secs: f64,
    /// Number of phases the job ran.
    pub phases: usize,
}

impl JobOutcome {
    /// Wall time from admission to completion.
    pub fn makespan_secs(&self) -> f64 {
        self.end_secs - self.arrival_secs
    }
}

/// Live context handed to a job's [`Replanner`] at a phase boundary.
pub struct ReplanCtx<'a> {
    /// The job's name as submitted.
    pub job: &'a str,
    /// Current sim time in seconds.
    pub now_secs: f64,
    /// Phases the job has completed so far.
    pub completed: usize,
    /// The not-yet-started tail of the job's phase chain, in run order.
    pub remaining: &'a [Phase],
}

/// A job's re-plan callback, invoked at every phase boundary (including
/// admission, before the first phase, and after the last, when `remaining`
/// is empty). Returning `Some(tail)` replaces the job's not-yet-started
/// phases; `None` keeps them. Boundaries are deterministic event-loop
/// instants, so any deterministic callback preserves byte-reproducibility;
/// returning `None` everywhere (or an identical tail) leaves the schedule
/// bitwise unchanged.
pub type Replanner = Box<dyn FnMut(&ReplanCtx<'_>) -> Option<Vec<Phase>>>;

/// A [`JobSpec`] plus an optional mid-mix re-planner for
/// [`ClusterExec::run_mix_adaptive`].
pub struct MixJob {
    pub spec: JobSpec,
    pub replan: Option<Replanner>,
}

impl MixJob {
    /// A fixed-plan job (no re-planning) — exactly what
    /// [`ClusterExec::run_mix`] submits.
    pub fn fixed(spec: JobSpec) -> MixJob {
        MixJob { spec, replan: None }
    }

    /// A job whose tail may be rewritten at phase boundaries.
    pub fn adaptive(
        spec: JobSpec,
        replan: impl FnMut(&ReplanCtx<'_>) -> Option<Vec<Phase>> + 'static,
    ) -> MixJob {
        MixJob {
            spec,
            replan: Some(Box::new(replan)),
        }
    }
}

/// The static resource topology a mix phase binds against, detached from
/// [`ClusterExec`] so per-job continuations (which only hold the [`Sim`])
/// can bind phases lazily at each boundary. Binding is pure — it reads the
/// topology and computes service times, touching neither the event loop
/// nor the probe stream — so binding at a boundary instead of at mix start
/// cannot change a single event.
struct Binder {
    nodes: Vec<crate::topo::NodeRes>,
    control_rx: ResourceId,
}

impl Binder {
    /// Bind abstract work items to concrete resource requests (the mix-time
    /// twin of the serial path's resolution; both call this).
    fn resolve(&self, work: &[Work]) -> Vec<(ResourceId, ResKind, Option<usize>, SimTime)> {
        let mut reqs = Vec::new();
        for w in work {
            match *w {
                Work::DiskSeq {
                    node,
                    bytes,
                    node_bw,
                } => {
                    // bytes/D per disk at node_bw/D per-disk share: every
                    // disk is busy for the full bytes/node_bw.
                    let service = secs(bytes / node_bw);
                    for &d in &self.nodes[node].disks {
                        reqs.push((d, ResKind::Disk, Some(node), service));
                    }
                }
                Work::Cpu {
                    node,
                    per_lane_secs,
                    lanes,
                } => {
                    let service = secs(per_lane_secs);
                    for _ in 0..lanes {
                        reqs.push((self.nodes[node].cpu, ResKind::Cpu, Some(node), service));
                    }
                }
                Work::NetSend { node, bytes, bw } => {
                    reqs.push((
                        self.nodes[node].nic_send,
                        ResKind::Net,
                        Some(node),
                        secs(bytes / bw),
                    ));
                }
                Work::NetRecv { node, bytes, bw } => {
                    reqs.push((
                        self.nodes[node].nic_recv,
                        ResKind::Net,
                        Some(node),
                        secs(bytes / bw),
                    ));
                }
                Work::GatherRecv { bytes, bw } => {
                    reqs.push((self.control_rx, ResKind::Net, None, secs(bytes / bw)));
                }
            }
        }
        reqs
    }
}

/// One mix job's live state, owned by its continuation chain: the unbound
/// phase tail, the boundary re-planner, and the completion bookkeeping.
struct MixJobState {
    client: u32,
    name: String,
    arrival_secs: f64,
    completed: usize,
    remaining: VecDeque<Phase>,
    replan: Option<Replanner>,
}

/// Advance one mix job at a phase boundary: offer the re-planner the
/// not-yet-started tail, bind the next phase's work to concrete requests
/// *now* (span opened now, requests issued after setup, span closed when
/// the last drains), then recurse; record a [`JobOutcome`] when the chain
/// is exhausted.
fn advance_mix_job(
    sim: &mut Sim<()>,
    binder: Rc<Binder>,
    mut st: MixJobState,
    spans: Rc<RefCell<Vec<Span>>>,
    outcomes: Rc<RefCell<Vec<JobOutcome>>>,
) {
    if let Some(replan) = st.replan.as_mut() {
        st.remaining.make_contiguous();
        let (tail, _) = st.remaining.as_slices();
        let ctx = ReplanCtx {
            job: &st.name,
            now_secs: as_secs(sim.now()),
            completed: st.completed,
            remaining: tail,
        };
        if let Some(new_tail) = replan(&ctx) {
            st.remaining = new_tail.into();
        }
    }
    let Some(phase) = st.remaining.pop_front() else {
        outcomes.borrow_mut().push(JobOutcome {
            name: st.name,
            arrival_secs: st.arrival_secs,
            end_secs: as_secs(sim.now()),
            phases: st.completed,
        });
        return;
    };
    let name = format!("{}/{}", st.name, phase.name);
    let node = phase.node;
    let setup = secs(phase.setup);
    let reqs = binder.resolve(&phase.work);
    let client = st.client;
    let t0 = sim.now();
    let sid = sim.next_span_id();
    sim.emit_probe(ProbeEvent::SpanOpened {
        at: t0,
        name: &name,
        node,
        id: sid,
    });
    let issue_at = t0.saturating_add(setup);
    let contribs: Rc<RefCell<Vec<Contrib>>> = Rc::default();
    let n = reqs.len();
    let fin = {
        let contribs = contribs.clone();
        let (spans, outcomes) = (spans, outcomes);
        let mut st = st;
        Latch::with(n.max(1) as u64, move |sim: &mut Sim<()>, _| {
            let end = sim.now();
            sim.emit_probe(ProbeEvent::SpanClosed {
                at: end,
                name: &name,
                node,
                id: sid,
            });
            spans.borrow_mut().push(Span {
                name,
                node,
                start: t0,
                end,
                contribs: contribs.take(),
            });
            st.completed += 1;
            advance_mix_job(sim, binder, st, spans, outcomes);
        })
    };
    sim.schedule_at(
        issue_at,
        Box::new(move |sim, _| {
            if n == 0 {
                // Pure-setup phase: the latch's single count is the setup
                // delay itself.
                fin.count_down(sim);
                return;
            }
            // Mix phases interleave, so the span context is scoped to
            // exactly this issue loop (requests capture it at enqueue).
            let prev = sim.set_probe_ctx(Some(sid));
            for (rid, kind, node, service) in reqs {
                let sink = contribs.clone();
                let f = fin.clone();
                sim.request_as_timed(
                    rid,
                    service,
                    client,
                    Box::new(move |sim, _, t: ReqTiming| {
                        // Queue wait comes from the kernel's own request
                        // instants (start − enqueue), not re-derived from
                        // issue-time arithmetic that would fold any
                        // completion-dispatch skew into the wait.
                        sink.borrow_mut().push(Contrib {
                            kind,
                            node,
                            service: as_secs(service),
                            queue_wait: as_secs(t.queue_wait()),
                        });
                        f.count_down(sim);
                    }),
                );
            }
            sim.set_probe_ctx(prev);
        }),
    );
}

/// A cluster bound to its own event loop, executing phases and recording
/// a [`Trace`].
pub struct ClusterExec {
    sim: Sim<()>,
    cluster: Cluster,
    /// The control node's ingest link (gather target). Not part of
    /// [`Cluster`]'s data-node resources.
    control_rx: ResourceId,
    /// The shared work→request binding table (serial and mix paths).
    binder: Rc<Binder>,
    /// Per-node HDFS ingest links (capacity 1), created lazily on the
    /// first [`TaskStep::HdfsRead`] so runs that never touch HDFS (PDW)
    /// report exactly the resources they use.
    hdfs_read: Vec<ResourceId>,
    trace: Trace,
    /// When `Some`, [`ClusterExec::run`] appends a clone of every phase it
    /// executes (see [`ClusterExec::record_phases`]) so an engine's plan
    /// can be replayed later inside a concurrent mix.
    recording: Option<Vec<Phase>>,
}

impl ClusterExec {
    pub fn new(params: Params) -> ClusterExec {
        let mut sim: Sim<()> = Sim::new();
        let cluster = Cluster::build(&mut sim, params);
        let control_rx = sim.add_resource_kind("control.rx", ResKind::Net, 1);
        let binder = Rc::new(Binder {
            nodes: cluster.nodes.clone(),
            control_rx,
        });
        ClusterExec {
            sim,
            cluster,
            control_rx,
            binder,
            hdfs_read: Vec::new(),
            trace: Trace::default(),
            recording: None,
        }
    }

    /// Start recording every [`Phase`] passed to [`ClusterExec::run`] (a
    /// clone is kept before execution). Lets an engine capture its
    /// resolved per-phase work so the identical plan can be replayed as a
    /// [`JobSpec`] inside [`ClusterExec::run_mix`] on another executor.
    pub fn record_phases(&mut self) {
        self.recording = Some(Vec::new());
    }

    /// Stop recording and return the captured phases (empty if
    /// [`ClusterExec::record_phases`] was never called).
    pub fn take_recorded_phases(&mut self) -> Vec<Phase> {
        self.recording.take().unwrap_or_default()
    }

    pub fn params(&self) -> &Params {
        &self.cluster.params
    }

    /// Current sim time in seconds (== total elapsed across phases run).
    pub fn now_secs(&self) -> f64 {
        as_secs(self.sim.now())
    }

    /// Current sim time in integer nanoseconds.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Kernel events executed by the underlying event loop so far. The
    /// perf-trajectory harness (`bench_kernel`) divides this by wall-clock
    /// to report events/sec on real engine workloads.
    pub fn events_executed(&self) -> u64 {
        self.sim.events_executed()
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Attach (or detach) a passive probe on the underlying event loop.
    /// Already-registered cluster resources are replayed to the probe;
    /// span and task events flow from here on.
    pub fn set_probe(&mut self, probe: Option<Rc<RefCell<dyn Probe>>>) {
        self.sim.set_probe(probe);
    }

    /// Run `phase` to completion. Returns its makespan in seconds and
    /// appends its [`Span`] to the trace.
    pub fn run(&mut self, phase: Phase) -> f64 {
        if let Some(rec) = &mut self.recording {
            rec.push(phase.clone());
        }
        let t0 = self.sim.now();
        let sid = self.sim.next_span_id();
        self.sim.emit_probe(ProbeEvent::SpanOpened {
            at: t0,
            name: &phase.name,
            node: phase.node,
            id: sid,
        });
        let issue_at = t0.saturating_add(secs(phase.setup));
        let reqs = self.resolve(&phase.work);
        let contribs: Rc<RefCell<Vec<Contrib>>> = Rc::default();
        let sink = contribs.clone();
        self.sim.schedule_at(
            issue_at,
            Box::new(move |sim, _| {
                for (rid, kind, node, service) in reqs {
                    let sink = sink.clone();
                    sim.request(
                        rid,
                        service,
                        Box::new(move |sim, _| {
                            let wait = sim.now().saturating_sub(issue_at).saturating_sub(service);
                            sink.borrow_mut().push(Contrib {
                                kind,
                                node,
                                service: as_secs(service),
                                queue_wait: as_secs(wait),
                            });
                        }),
                    );
                }
            }),
        );
        // `run` drains exclusively (one phase at a time), so every request
        // issued during the drain belongs to this span.
        let prev = self.sim.set_probe_ctx(Some(sid));
        self.sim.run(&mut ());
        self.sim.set_probe_ctx(prev);
        let end = self.sim.now();
        self.sim.emit_probe(ProbeEvent::SpanClosed {
            at: end,
            name: &phase.name,
            node: phase.node,
            id: sid,
        });
        self.trace.push(Span {
            name: phase.name,
            node: phase.node,
            start: t0,
            end,
            contribs: contribs.take(),
        });
        as_secs(end.saturating_sub(t0))
    }

    /// Run a slot-scheduled [`TaskPhase`] to completion: dispatch every
    /// task (FIFO, in task order) onto its node's slot pool after the
    /// phase's setup delay, drain the event queue, and append an aggregate
    /// [`Span`] (one [`Contrib`] per resource kind, summed over the phase).
    pub fn run_tasks(&mut self, phase: TaskPhase) -> TaskPhaseReport {
        if phase.tasks.iter().any(|t| {
            t.steps
                .iter()
                .any(|s| matches!(s, TaskStep::HdfsRead { .. }))
        }) {
            self.ensure_hdfs_links();
        }
        let t0 = self.sim.now();
        let sid = self.sim.next_span_id();
        self.sim.emit_probe(ProbeEvent::SpanOpened {
            at: t0,
            name: &phase.name,
            node: None,
            id: sid,
        });
        let before = self.class_totals();
        let issue_at = t0.saturating_add(secs(phase.setup));
        let bound: Vec<BoundTask> = phase.tasks.iter().map(|t| self.bind_task(t)).collect();
        let n_nodes = self.cluster.nodes.len();
        let slots = phase.slots_per_node;
        let retries = Rc::new(Cell::new(0u32));
        let retries_out = retries.clone();
        self.sim.schedule_at(
            issue_at,
            Box::new(move |sim, _| {
                let pools: Vec<_> = (0..n_nodes).map(|_| SlotPool::new(slots)).collect();
                for task in bound {
                    let pool = pools[task.node].clone();
                    let body = task_body(task, pool.clone(), retries.clone());
                    SlotPool::acquire(&pool, sim, body);
                }
            }),
        );
        // Task steps issue requests at arbitrary times during this
        // exclusive drain; the span context covers them all.
        let prev = self.sim.set_probe_ctx(Some(sid));
        self.sim.run(&mut ());
        self.sim.set_probe_ctx(prev);
        let end = self.sim.now();
        self.sim.emit_probe(ProbeEvent::SpanClosed {
            at: end,
            name: &phase.name,
            node: None,
            id: sid,
        });
        let after = self.class_totals();
        let mut contribs = Vec::new();
        for (i, kind) in ResKind::ALL.iter().enumerate() {
            let service = after[i] - before[i];
            let queue_wait = after[i + 3] - before[i + 3];
            if service > 0.0 || queue_wait > 0.0 {
                contribs.push(Contrib {
                    kind: *kind,
                    node: None,
                    service,
                    queue_wait,
                });
            }
        }
        self.trace.push(Span {
            name: phase.name,
            node: None,
            start: t0,
            end,
            contribs,
        });
        TaskPhaseReport {
            end_secs: as_secs(end),
            end,
            retries: retries_out.get(),
        }
    }

    /// Run a concurrent mix of jobs to completion.
    ///
    /// Each job's phase chain advances serially (intra-job barriers
    /// preserved) while different jobs contend for the same resources.
    /// Admission order — and hence each job's client tag for fair
    /// dispatch — is the canonical sort by `(arrival, name)`, so permuting
    /// the submission order of `jobs` cannot change the schedule. Phase
    /// spans are appended to the trace in completion order under
    /// `job/phase` names; outcomes return in admission order.
    pub fn run_mix(&mut self, jobs: Vec<JobSpec>) -> Vec<JobOutcome> {
        self.run_mix_adaptive(jobs.into_iter().map(MixJob::fixed).collect())
    }

    /// [`ClusterExec::run_mix`] with optional per-job re-planning: at every
    /// phase boundary a job's [`Replanner`] (if any) may rewrite its
    /// not-yet-started phase tail from whatever live state it observes
    /// (probes, metrics windows, blame). Phases are bound to concrete
    /// resources lazily, when they start — binding is pure, so a mix whose
    /// re-planners always return `None` (or are absent) executes the exact
    /// event sequence of the fixed-plan path, byte for byte.
    ///
    /// Determinism contract: re-plans fire only at phase boundaries —
    /// admission, each phase completion, and chain exhaustion — which are
    /// deterministic event-loop instants, and jobs are admitted in the
    /// canonical `(arrival, name)` order regardless of submission
    /// permutation. A deterministic re-planner therefore yields a
    /// byte-reproducible run.
    pub fn run_mix_adaptive(&mut self, mut jobs: Vec<MixJob>) -> Vec<JobOutcome> {
        jobs.sort_by(|a, b| {
            (secs(a.spec.arrival_secs), a.spec.name.as_str())
                .cmp(&(secs(b.spec.arrival_secs), b.spec.name.as_str()))
        });
        let binder = self.binder.clone();
        let spans: Rc<RefCell<Vec<Span>>> = Rc::default();
        let outcomes: Rc<RefCell<Vec<JobOutcome>>> = Rc::default();
        let t0 = self.sim.now();
        for (client, job) in jobs.into_iter().enumerate() {
            let st = MixJobState {
                client: client as u32,
                name: job.spec.name,
                arrival_secs: job.spec.arrival_secs,
                completed: 0,
                remaining: job.spec.phases.into(),
                replan: job.replan,
            };
            let arrival = secs(st.arrival_secs);
            let binder = binder.clone();
            let (spans, outcomes) = (spans.clone(), outcomes.clone());
            self.sim.schedule_at(
                t0.saturating_add(arrival),
                Box::new(move |sim, _| advance_mix_job(sim, binder, st, spans, outcomes)),
            );
        }
        self.sim.run(&mut ());
        for span in spans.take() {
            self.trace.push(span);
        }
        let mut out = outcomes.take();
        out.sort_by(|a, b| {
            (secs(a.arrival_secs), a.name.as_str()).cmp(&(secs(b.arrival_secs), b.name.as_str()))
        });
        out
    }

    fn ensure_hdfs_links(&mut self) {
        if self.hdfs_read.is_empty() {
            self.hdfs_read = (0..self.cluster.params.nodes)
                .map(|n| {
                    self.sim
                        .add_resource_kind(format!("node{n}.hdfs_read"), ResKind::Disk, 1)
                })
                .collect();
        }
    }

    /// Bind a task's steps to concrete resources and service times.
    fn bind_task(&self, task: &Task) -> BoundTask {
        let node = task.node % self.cluster.nodes.len();
        let nres = &self.cluster.nodes[node];
        let p = &self.cluster.params;
        let steps = task
            .steps
            .iter()
            .map(|s| match *s {
                TaskStep::Delay { secs: d } => BoundStep::Delay(secs(d)),
                TaskStep::HdfsRead { bytes, bw } => {
                    BoundStep::Acquire(self.hdfs_read[node], secs(bytes as f64 / bw))
                }
                TaskStep::Cpu { secs: c } => BoundStep::Acquire(nres.cpu, secs(c)),
                TaskStep::DiskWrite { disk, bytes } => BoundStep::Acquire(
                    nres.disks[disk % nres.disks.len()],
                    secs(bytes as f64 / p.disk_seq_bw),
                ),
                TaskStep::HdfsWrite {
                    disk,
                    bytes,
                    net_bytes,
                    net_bw,
                } => BoundStep::ForkTwo([
                    (
                        nres.disks[disk % nres.disks.len()],
                        secs(bytes as f64 / p.disk_seq_bw),
                    ),
                    (nres.nic_send, secs(net_bytes as f64 / net_bw)),
                ]),
            })
            .collect();
        BoundTask {
            node,
            steps,
            fail_wasting: task.fail_wasting.map(secs),
        }
    }

    /// Cumulative `[disk, cpu, net]` busy then queue-wait seconds at the
    /// current sim time, by resource kind (HDFS ingest links count as
    /// disk-kind; the control ingest link as net-kind).
    fn class_totals(&self) -> [f64; 6] {
        let busy = |id: &ResourceId| as_secs(self.sim.resource_busy_time(*id));
        let wait = |id: &ResourceId| as_secs(self.sim.resource_queue_wait(*id));
        let mut disk: Vec<ResourceId> = self.hdfs_read.clone();
        let mut cpu = Vec::new();
        let mut net = Vec::new();
        for n in &self.cluster.nodes {
            disk.extend(&n.disks);
            cpu.push(n.cpu);
            net.push(n.nic_send);
            net.push(n.nic_recv);
        }
        net.push(self.control_rx);
        [
            disk.iter().map(busy).sum(),
            cpu.iter().map(busy).sum(),
            net.iter().map(busy).sum(),
            disk.iter().map(wait).sum(),
            cpu.iter().map(wait).sum(),
            net.iter().map(wait).sum(),
        ]
    }

    /// Bind abstract work items to concrete resource requests (shared with
    /// the mix path's [`Binder`], so serial and mix phases bind
    /// identically).
    fn resolve(&self, work: &[Work]) -> Vec<(ResourceId, ResKind, Option<usize>, SimTime)> {
        self.binder.resolve(work)
    }

    /// End-of-run utilization of every cluster resource (all nodes' CPUs,
    /// disks, NIC directions, the control ingest link, and — if any task
    /// phase read HDFS — the per-node HDFS ingest links).
    pub fn resource_reports(&self) -> Vec<ResourceReport> {
        let mut ids = Vec::new();
        for n in &self.cluster.nodes {
            ids.push(n.cpu);
            ids.extend(&n.disks);
            ids.push(n.nic_send);
            ids.push(n.nic_recv);
        }
        ids.push(self.control_rx);
        ids.extend(&self.hdfs_read);
        report(&self.sim, &ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MB;

    fn params() -> Params {
        Params {
            nodes: 4,
            cores_per_node: 4,
            disks_per_node: 2,
            ..Params::paper_dss()
        }
    }

    #[test]
    fn scan_phase_is_max_of_io_and_cpu_plus_setup() {
        let mut ex = ClusterExec::new(params());
        let node_bw = 100.0 * MB as f64;
        let mut p = Phase::new("scan").setup(0.5);
        for n in 0..4 {
            // 200 MB of I/O (2.0s) vs 1.0s of CPU on 4 lanes.
            p.disk_seq(n, 200.0 * MB as f64, node_bw);
            p.cpu(n, 1.0, 4);
        }
        let t = ex.run(p);
        assert!((t - 2.5).abs() < 1e-6, "max(2.0, 1.0) + 0.5, got {t}");
        let span = &ex.trace().spans[0];
        let u = span.util();
        // 2 disks per node × 4 nodes × 2.0s busy each.
        assert!(
            (u.disk_busy - 16.0).abs() < 1e-6,
            "disk busy {}",
            u.disk_busy
        );
        assert!((u.cpu_busy - 16.0).abs() < 1e-6, "cpu busy {}", u.cpu_busy);
        assert_eq!(u.requests, 8 + 16);
        // No contention: nothing queued.
        assert!(u.disk_wait < 1e-9 && u.cpu_wait < 1e-9);
    }

    #[test]
    fn gather_serializes_on_control_ingest() {
        let mut ex = ClusterExec::new(params());
        let bw = 100.0 * MB as f64;
        let mut p = Phase::new("gather");
        for n in 0..4 {
            // Each node ships 100 MB: sends run concurrently (1s each) but
            // the control link ingests them one after another (4s total).
            p.net_send(n, 100.0 * MB as f64, bw);
            p.gather_recv(100.0 * MB as f64, bw);
        }
        let t = ex.run(p);
        assert!((t - 4.0).abs() < 1e-6, "serialized ingest, got {t}");
        let u = ex.trace().spans[0].util();
        // 3 of the 4 ingest requests queued: 1+2+3 = 6s of waiting.
        assert!((u.net_wait - 6.0).abs() < 1e-6, "net wait {}", u.net_wait);
    }

    #[test]
    fn phases_run_serially_and_accumulate_in_trace() {
        let mut ex = ClusterExec::new(params());
        let mut a = Phase::new("a");
        a.cpu(0, 1.0, 1);
        let ta = ex.run(a);
        let mut b = Phase::new("b");
        b.cpu(0, 2.0, 1);
        let tb = ex.run(b);
        assert!((ta - 1.0).abs() < 1e-9);
        assert!((tb - 2.0).abs() < 1e-9);
        assert!((ex.now_secs() - 3.0).abs() < 1e-9);
        let spans = &ex.trace().spans;
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].start, spans[0].end, "phases are back-to-back");
    }

    #[test]
    fn pure_setup_phase_advances_clock_with_no_requests() {
        let mut ex = ClusterExec::new(params());
        let t = ex.run(Phase::new("latency-only").setup(0.25));
        assert!((t - 0.25).abs() < 1e-9);
        assert!(ex.trace().spans[0].contribs.is_empty());
    }

    #[test]
    fn resource_reports_cover_all_nodes_and_control() {
        let p = params();
        let resources_per_node = 1 + p.disks_per_node as usize + 2;
        let mut ex = ClusterExec::new(p);
        let mut ph = Phase::new("work");
        ph.cpu(1, 1.0, 2);
        ex.run(ph);
        let reports = ex.resource_reports();
        assert_eq!(reports.len(), 4 * resources_per_node + 1);
        let cpu1 = reports.iter().find(|r| r.name == "node1.cpu").unwrap();
        assert!((cpu1.busy_secs - 2.0).abs() < 1e-9);
        assert_eq!(cpu1.completions, 2);
        assert_eq!(reports.last().unwrap().name, "control.rx");
    }

    #[test]
    fn task_phase_slots_produce_waves() {
        // 4 CPU-bound tasks per node over 2 slots per node: two waves.
        let mut ex = ClusterExec::new(params());
        let mut ph = TaskPhase::new("waves", 2);
        for i in 0..16 {
            ph.task(Task::on(i % 4).step(TaskStep::Cpu { secs: 1.0 }));
        }
        let r = ex.run_tasks(ph);
        assert!(
            (r.end_secs - 2.0).abs() < 1e-9,
            "4 tasks over 2 slots = 2 waves, got {}",
            r.end_secs
        );
        assert_eq!(r.retries, 0);
        let u = ex.trace().spans[0].util();
        assert!((u.cpu_busy - 16.0).abs() < 1e-9);
    }

    #[test]
    fn empty_task_phase_costs_setup_only() {
        let mut ex = ClusterExec::new(params());
        let r = ex.run_tasks(TaskPhase::new("nothing", 8).setup(1.5));
        assert!((r.end_secs - 1.5).abs() < 1e-9);
        let span = &ex.trace().spans[0];
        assert_eq!(span.name, "nothing");
        assert!(span.contribs.is_empty());
    }

    #[test]
    fn hdfs_reads_serialize_per_node() {
        // The ingest link has capacity 1: two concurrent 1s reads on the
        // same node take 2s even with free slots, and a zero-byte read
        // queued behind them still has to wait its turn.
        let mut ex = ClusterExec::new(params());
        let bw = 100.0 * MB as f64;
        let mut ph = TaskPhase::new("reads", 8);
        for _ in 0..2 {
            ph.task(Task::on(0).step(TaskStep::HdfsRead {
                bytes: 100 * MB,
                bw,
            }));
        }
        ph.task(Task::on(0).step(TaskStep::HdfsRead { bytes: 0, bw }));
        let r = ex.run_tasks(ph);
        assert!((r.end_secs - 2.0).abs() < 1e-9, "got {}", r.end_secs);
        let u = ex.trace().spans[0].util();
        // 1s + 2s of queue wait (second read + the zero-byte read).
        assert!((u.disk_wait - 3.0).abs() < 1e-9, "wait {}", u.disk_wait);
    }

    #[test]
    fn hdfs_write_forks_disk_and_replication_send() {
        let mut ex = ClusterExec::new(params());
        let p = ex.params().clone();
        let disk_secs = 1.0;
        let net_secs = 2.0;
        let mut ph = TaskPhase::new("out", 8);
        ph.task(Task::on(0).step(TaskStep::HdfsWrite {
            disk: 0,
            bytes: (disk_secs * p.disk_seq_bw) as u64,
            net_bytes: (net_secs * p.nic_bw) as u64,
            net_bw: p.nic_bw,
        }));
        let r = ex.run_tasks(ph);
        // Concurrent: the slower branch (replication send) bounds the step.
        assert!((r.end_secs - net_secs).abs() < 1e-6, "got {}", r.end_secs);
        let u = ex.trace().spans[0].util();
        assert!((u.disk_busy - disk_secs).abs() < 1e-6);
        assert!((u.net_busy - net_secs).abs() < 1e-6);
    }

    #[test]
    fn failing_task_retries_once_and_extends_the_phase() {
        let mut ex = ClusterExec::new(params());
        let mut ph = TaskPhase::new("faulty", 1);
        ph.task(
            Task::on(0)
                .step(TaskStep::Cpu { secs: 1.0 })
                .fail_once_wasting(0.5),
        );
        let r = ex.run_tasks(ph);
        assert_eq!(r.retries, 1);
        // 0.5s wasted holding the slot, then the clean 1s attempt.
        assert!((r.end_secs - 1.5).abs() < 1e-9, "got {}", r.end_secs);
    }

    #[test]
    fn mix_interleaves_jobs_on_shared_resources() {
        // Two single-phase CPU jobs on node 0 (4 cores), each wanting 8
        // lanes of 0.5s (4s of core-time per job). Admitted together they
        // share the pool: 8s of work on 4 cores = 2s of wall time, and
        // fair dispatch interleaves the queued lanes so job a finishes at
        // 1.5s — not the 1.0s a FIFO head-start would give it.
        let mut ex = ClusterExec::new(params());
        let job = |name: &str| {
            let mut p = Phase::new("work");
            p.cpu(0, 0.5, 8);
            JobSpec {
                name: name.into(),
                arrival_secs: 0.0,
                phases: vec![p],
            }
        };
        let out = ex.run_mix(vec![job("a"), job("b")]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].name, "a");
        assert!(
            (out[0].end_secs - 1.5).abs() < 1e-9,
            "got {}",
            out[0].end_secs
        );
        assert!(
            (out[1].end_secs - 2.0).abs() < 1e-9,
            "got {}",
            out[1].end_secs
        );
        // Both jobs experienced queueing on the shared pool.
        for name in ["a/work", "b/work"] {
            let s = ex.trace().spans.iter().find(|s| s.name == name).unwrap();
            assert!(s.util().cpu_wait > 0.0, "{name} never waited");
        }
    }

    #[test]
    fn mix_preserves_intra_job_phase_order() {
        let mut ex = ClusterExec::new(params());
        let mut p1 = Phase::new("first");
        p1.cpu(0, 1.0, 1);
        let mut p2 = Phase::new("second");
        p2.cpu(0, 1.0, 1);
        let out = ex.run_mix(vec![JobSpec {
            name: "chain".into(),
            arrival_secs: 0.5,
            phases: vec![p1, p2],
        }]);
        assert_eq!(out[0].phases, 2);
        assert!((out[0].end_secs - 2.5).abs() < 1e-9);
        assert!((out[0].makespan_secs() - 2.0).abs() < 1e-9);
        let spans = &ex.trace().spans;
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "chain/first");
        assert_eq!(spans[1].name, "chain/second");
        assert_eq!(spans[1].start, spans[0].end);
    }

    #[test]
    fn mix_is_invariant_under_submission_permutation() {
        let run = |order_rev: bool| {
            let mut ex = ClusterExec::new(params());
            let job = |name: &str| {
                let mut p = Phase::new("scan");
                p.disk_seq(0, 100.0 * MB as f64, 100.0 * MB as f64);
                JobSpec {
                    name: name.into(),
                    arrival_secs: 0.0,
                    phases: vec![p],
                }
            };
            let mut jobs = vec![job("x"), job("y")];
            if order_rev {
                jobs.reverse();
            }
            let out = ex.run_mix(jobs);
            let reports = ex.resource_reports();
            (
                out.iter()
                    .map(|o| (o.name.clone(), o.end_secs))
                    .collect::<Vec<_>>(),
                format!("{reports:?}"),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn mix_pure_setup_job_advances_without_requests() {
        let mut ex = ClusterExec::new(params());
        let out = ex.run_mix(vec![JobSpec {
            name: "latency".into(),
            arrival_secs: 0.25,
            phases: vec![Phase::new("rtt").setup(0.5)],
        }]);
        assert!((out[0].end_secs - 0.75).abs() < 1e-9);
        assert!(ex.trace().spans[0].contribs.is_empty());
    }

    #[test]
    fn recorded_phases_replay_identically() {
        // Record a serial plan, replay it as a single-job mix on a fresh
        // executor: same phase makespans.
        let mut ex = ClusterExec::new(params());
        ex.record_phases();
        let mut p = Phase::new("scan");
        p.disk_seq(1, 200.0 * MB as f64, 100.0 * MB as f64);
        p.cpu(1, 1.0, 4);
        let t_serial = ex.run(p);
        let phases = ex.take_recorded_phases();
        assert_eq!(phases.len(), 1);
        let mut ex2 = ClusterExec::new(params());
        let out = ex2.run_mix(vec![JobSpec {
            name: "replay".into(),
            arrival_secs: 0.0,
            phases,
        }]);
        assert!((out[0].end_secs - t_serial).abs() < 1e-9);
    }

    #[test]
    fn hdfs_links_reported_only_when_used() {
        let mut ex = ClusterExec::new(params());
        let mut ph = Phase::new("pdw-like");
        ph.cpu(0, 1.0, 1);
        ex.run(ph);
        assert!(
            !ex.resource_reports()
                .iter()
                .any(|r| r.name.contains("hdfs_read")),
            "phase-only runs must not grow extra resources"
        );
        let mut tp = TaskPhase::new("mr-like", 8);
        tp.task(Task::on(2).step(TaskStep::HdfsRead {
            bytes: MB,
            bw: 100.0 * MB as f64,
        }));
        ex.run_tasks(tp);
        assert!(ex
            .resource_reports()
            .iter()
            .any(|r| r.name == "node2.hdfs_read"));
    }

    /// Probe that flattens the event stream into strings, for bitwise
    /// comparisons of whole runs.
    #[derive(Default)]
    struct EventLog(Vec<String>);

    impl Probe for EventLog {
        fn on_event(&mut self, ev: &ProbeEvent<'_>) {
            self.0.push(format!("{ev:?}"));
        }
    }

    fn chain_job(name: &str, arrival: f64) -> JobSpec {
        let mut p1 = Phase::new("a");
        p1.cpu(0, 0.5, 2);
        let p2 = Phase::new("handoff").setup(0.25);
        let mut p3 = Phase::new("b");
        p3.cpu(1, 0.5, 2);
        JobSpec {
            name: name.into(),
            arrival_secs: arrival,
            phases: vec![p1, p2, p3],
        }
    }

    #[test]
    fn mix_pure_setup_phase_mid_chain_is_a_boundary() {
        // A zero-request setup phase in the middle of a chain must advance
        // the clock, keep the chain's order, and present a re-plan boundary
        // like any other phase.
        let boundaries: Rc<RefCell<Vec<(usize, f64)>>> = Rc::default();
        let seen = boundaries.clone();
        let mut ex = ClusterExec::new(params());
        let out = ex.run_mix_adaptive(vec![MixJob::adaptive(chain_job("j", 0.0), move |ctx| {
            seen.borrow_mut().push((ctx.completed, ctx.now_secs));
            None
        })]);
        assert_eq!(out[0].phases, 3);
        assert!((out[0].end_secs - 1.25).abs() < 1e-9);
        let spans = &ex.trace().spans;
        assert_eq!(
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["j/a", "j/handoff", "j/b"]
        );
        assert!(spans[1].contribs.is_empty(), "setup phase made requests");
        // Boundaries: admission, then one after each completed phase.
        assert_eq!(
            *boundaries.borrow(),
            vec![(0, 0.0), (1, 0.5), (2, 0.75), (3, 1.25)]
        );
    }

    #[test]
    fn mix_replan_can_empty_the_tail() {
        // A re-planner that drops every remaining phase ends the job at
        // the boundary; the outcome records only the phases that ran.
        let mut ex = ClusterExec::new(params());
        let out = ex.run_mix_adaptive(vec![MixJob::adaptive(chain_job("j", 0.0), |ctx| {
            if ctx.completed == 1 {
                Some(Vec::new())
            } else {
                None
            }
        })]);
        assert_eq!(out[0].phases, 1);
        assert!((out[0].end_secs - 0.5).abs() < 1e-9);
        assert_eq!(ex.trace().spans.len(), 1);
        assert_eq!(ex.trace().spans[0].name, "j/a");
    }

    #[test]
    fn mix_identity_replan_is_bitwise_noop() {
        // Returning the tail unchanged (or None) must not perturb a single
        // event: outcomes and the full probe stream are compared bitwise
        // against the non-adaptive run.
        let run = |adaptive: bool| {
            let mut ex = ClusterExec::new(params());
            let log = Rc::new(RefCell::new(EventLog::default()));
            ex.set_probe(Some(log.clone() as Rc<RefCell<dyn Probe>>));
            let jobs = vec![chain_job("x", 0.1), chain_job("y", 0.0)];
            let out = if adaptive {
                ex.run_mix_adaptive(
                    jobs.into_iter()
                        .enumerate()
                        .map(|(i, spec)| {
                            if i == 0 {
                                // Identity rewrite: same phases, new Vec.
                                MixJob::adaptive(spec, |ctx| Some(ctx.remaining.to_vec()))
                            } else {
                                MixJob::adaptive(spec, |_| None)
                            }
                        })
                        .collect(),
                )
            } else {
                ex.run_mix(jobs)
            };
            ex.set_probe(None);
            let outs: Vec<(String, u64, usize)> = out
                .iter()
                .map(|o| (o.name.clone(), o.end_secs.to_bits(), o.phases))
                .collect();
            let events = log.borrow().0.clone();
            (outs, events)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn mix_contrib_waits_reconcile_with_resource_reports() {
        // Per-span queue-wait attribution must add up to the kernel's own
        // per-resource wait accounting: both sides now come from the same
        // request timing, so the totals agree to float round-off.
        let mut ex = ClusterExec::new(params());
        let job = |name: &str| {
            let mut p = Phase::new("work");
            p.cpu(0, 0.5, 8);
            p.disk_seq(0, 100.0 * MB as f64, 100.0 * MB as f64);
            JobSpec {
                name: name.into(),
                arrival_secs: 0.0,
                phases: vec![p],
            }
        };
        ex.run_mix(vec![job("a"), job("b"), job("c")]);
        let mut span_wait = 0.0;
        let mut span_requests = 0u64;
        for s in &ex.trace().spans {
            for c in &s.contribs {
                span_wait += c.queue_wait;
                span_requests += 1;
            }
        }
        assert!(span_wait > 0.0, "mix was not contended");
        let mut report_wait = 0.0;
        let mut report_requests = 0u64;
        for r in ex.resource_reports() {
            report_wait += r.mean_queue_wait_secs * r.completions as f64;
            report_requests += r.completions;
        }
        assert_eq!(span_requests, report_requests);
        assert!(
            (span_wait - report_wait).abs() < 1e-6,
            "span wait {span_wait} vs resource wait {report_wait}"
        );
    }
}
