//! Phase execution: charge a query phase's per-node work against the shared
//! cluster resources on the DES, and emit a [`Span`] for every phase.
//!
//! Engines describe a phase as *work volumes* — bytes to scan, CPU seconds
//! to burn, bytes to ship — and [`ClusterExec`] turns each volume into
//! `simkit` resource requests on the node's disks, CPU pool, and NIC
//! directions. Makespans therefore come out of the event loop (including
//! any queueing behind other requests), not from closed-form `max(io, cpu)`
//! arithmetic, and every phase records where its time went.
//!
//! ## Work resolution
//!
//! * [`Phase::disk_seq`] — `bytes` of sequential I/O on a node, striped
//!   evenly across all of its disks: each disk serves `bytes/D` at its
//!   `node_bw/D` share, so all disks run concurrently for `bytes/node_bw`.
//! * [`Phase::cpu`] — `lanes` parallel workers of `per_lane_secs` each on
//!   the node's k-core pool (lanes ≤ cores ⇒ no queueing).
//! * [`Phase::net_send`] / [`Phase::net_recv`] — one request per NIC
//!   direction of `bytes / bw`.
//! * [`Phase::gather_recv`] — ingest at the control node's single receive
//!   link; concurrent senders serialize there, which is exactly how a
//!   gather's cost accrues.
//!
//! Phases run serially on one [`ClusterExec`] (the event queue drains
//! between phases), matching PDW's step-at-a-time DSQL plans; the resource
//! *accounting* (busy integrals, queue waits) accumulates across the whole
//! run for end-of-query utilization reports.

use crate::params::Params;
use crate::topo::Cluster;
use simkit::resource::{report, ResourceReport};
use simkit::trace::{Contrib, ResKind, Span, Trace};
use simkit::{as_secs, secs, ResourceId, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A unit of work inside a phase, not yet bound to concrete resources.
#[derive(Clone, Debug)]
enum Work {
    /// Sequential disk I/O of `bytes` on `node` at aggregate `node_bw`.
    DiskSeq {
        node: usize,
        bytes: f64,
        node_bw: f64,
    },
    /// `lanes` parallel CPU workers of `per_lane_secs` each on `node`.
    Cpu {
        node: usize,
        per_lane_secs: f64,
        lanes: usize,
    },
    /// Outbound transfer of `bytes` from `node` at `bw`.
    NetSend { node: usize, bytes: f64, bw: f64 },
    /// Inbound transfer of `bytes` into `node` at `bw`.
    NetRecv { node: usize, bytes: f64, bw: f64 },
    /// Ingest of `bytes` at the control node's receive link at `bw`.
    GatherRecv { bytes: f64, bw: f64 },
}

/// Builder for one phase: a named batch of work items issued together
/// after `setup` seconds of fixed overhead.
#[derive(Clone, Debug)]
pub struct Phase {
    name: String,
    node: Option<usize>,
    setup: f64,
    work: Vec<Work>,
}

impl Phase {
    pub fn new(name: impl Into<String>) -> Phase {
        Phase {
            name: name.into(),
            node: None,
            setup: 0.0,
            work: Vec::new(),
        }
    }

    /// Pin the phase's span to one node (default: cluster-wide).
    pub fn on_node(mut self, node: usize) -> Phase {
        self.node = Some(node);
        self
    }

    /// Fixed overhead paid before any work is issued (step startup,
    /// round-trip latencies).
    pub fn setup(mut self, secs: f64) -> Phase {
        self.setup += secs;
        self
    }

    /// Sequential I/O of `bytes` on `node`, striped across all its disks
    /// at aggregate bandwidth `node_bw` bytes/sec.
    pub fn disk_seq(&mut self, node: usize, bytes: f64, node_bw: f64) -> &mut Phase {
        if bytes > 0.0 {
            self.work.push(Work::DiskSeq {
                node,
                bytes,
                node_bw,
            });
        }
        self
    }

    /// CPU work on `node`: `lanes` parallel workers, `per_lane_secs` each.
    pub fn cpu(&mut self, node: usize, per_lane_secs: f64, lanes: usize) -> &mut Phase {
        if per_lane_secs > 0.0 && lanes > 0 {
            self.work.push(Work::Cpu {
                node,
                per_lane_secs,
                lanes,
            });
        }
        self
    }

    /// Outbound network transfer from `node`.
    pub fn net_send(&mut self, node: usize, bytes: f64, bw: f64) -> &mut Phase {
        if bytes > 0.0 {
            self.work.push(Work::NetSend { node, bytes, bw });
        }
        self
    }

    /// Inbound network transfer into `node`.
    pub fn net_recv(&mut self, node: usize, bytes: f64, bw: f64) -> &mut Phase {
        if bytes > 0.0 {
            self.work.push(Work::NetRecv { node, bytes, bw });
        }
        self
    }

    /// Ingest `bytes` at the control node's receive link.
    pub fn gather_recv(&mut self, bytes: f64, bw: f64) -> &mut Phase {
        if bytes > 0.0 {
            self.work.push(Work::GatherRecv { bytes, bw });
        }
        self
    }
}

/// A cluster bound to its own event loop, executing phases and recording
/// a [`Trace`].
pub struct ClusterExec {
    sim: Sim<()>,
    cluster: Cluster,
    /// The control node's ingest link (gather target). Not part of
    /// [`Cluster`]'s data-node resources.
    control_rx: ResourceId,
    trace: Trace,
}

impl ClusterExec {
    pub fn new(params: Params) -> ClusterExec {
        let mut sim: Sim<()> = Sim::new();
        let cluster = Cluster::build(&mut sim, params);
        let control_rx = sim.add_resource("control.rx", 1);
        ClusterExec {
            sim,
            cluster,
            control_rx,
            trace: Trace::default(),
        }
    }

    pub fn params(&self) -> &Params {
        &self.cluster.params
    }

    /// Current sim time in seconds (== total elapsed across phases run).
    pub fn now_secs(&self) -> f64 {
        as_secs(self.sim.now())
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Run `phase` to completion. Returns its makespan in seconds and
    /// appends its [`Span`] to the trace.
    pub fn run(&mut self, phase: Phase) -> f64 {
        let t0 = self.sim.now();
        let issue_at = t0.saturating_add(secs(phase.setup));
        let reqs = self.resolve(&phase.work);
        let contribs: Rc<RefCell<Vec<Contrib>>> = Rc::default();
        let sink = contribs.clone();
        self.sim.schedule_at(
            issue_at,
            Box::new(move |sim, _| {
                for (rid, kind, node, service) in reqs {
                    let sink = sink.clone();
                    sim.request(
                        rid,
                        service,
                        Box::new(move |sim, _| {
                            let wait = sim.now().saturating_sub(issue_at).saturating_sub(service);
                            sink.borrow_mut().push(Contrib {
                                kind,
                                node,
                                service: as_secs(service),
                                queue_wait: as_secs(wait),
                            });
                        }),
                    );
                }
            }),
        );
        self.sim.run(&mut ());
        let end = self.sim.now();
        self.trace.push(Span {
            name: phase.name,
            node: phase.node,
            start: t0,
            end,
            contribs: contribs.take(),
        });
        as_secs(end.saturating_sub(t0))
    }

    /// Bind abstract work items to concrete resource requests.
    fn resolve(&self, work: &[Work]) -> Vec<(ResourceId, ResKind, Option<usize>, SimTime)> {
        let mut reqs = Vec::new();
        for w in work {
            match *w {
                Work::DiskSeq {
                    node,
                    bytes,
                    node_bw,
                } => {
                    // bytes/D per disk at node_bw/D per-disk share: every
                    // disk is busy for the full bytes/node_bw.
                    let service = secs(bytes / node_bw);
                    for &d in &self.cluster.nodes[node].disks {
                        reqs.push((d, ResKind::Disk, Some(node), service));
                    }
                }
                Work::Cpu {
                    node,
                    per_lane_secs,
                    lanes,
                } => {
                    let service = secs(per_lane_secs);
                    for _ in 0..lanes {
                        reqs.push((
                            self.cluster.nodes[node].cpu,
                            ResKind::Cpu,
                            Some(node),
                            service,
                        ));
                    }
                }
                Work::NetSend { node, bytes, bw } => {
                    reqs.push((
                        self.cluster.nodes[node].nic_send,
                        ResKind::Net,
                        Some(node),
                        secs(bytes / bw),
                    ));
                }
                Work::NetRecv { node, bytes, bw } => {
                    reqs.push((
                        self.cluster.nodes[node].nic_recv,
                        ResKind::Net,
                        Some(node),
                        secs(bytes / bw),
                    ));
                }
                Work::GatherRecv { bytes, bw } => {
                    reqs.push((self.control_rx, ResKind::Net, None, secs(bytes / bw)));
                }
            }
        }
        reqs
    }

    /// End-of-run utilization of every cluster resource (all nodes' CPUs,
    /// disks, NIC directions, plus the control ingest link).
    pub fn resource_reports(&self) -> Vec<ResourceReport> {
        let mut ids = Vec::new();
        for n in &self.cluster.nodes {
            ids.push(n.cpu);
            ids.extend(&n.disks);
            ids.push(n.nic_send);
            ids.push(n.nic_recv);
        }
        ids.push(self.control_rx);
        report(&self.sim, &ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MB;

    fn params() -> Params {
        Params {
            nodes: 4,
            cores_per_node: 4,
            disks_per_node: 2,
            ..Params::paper_dss()
        }
    }

    #[test]
    fn scan_phase_is_max_of_io_and_cpu_plus_setup() {
        let mut ex = ClusterExec::new(params());
        let node_bw = 100.0 * MB as f64;
        let mut p = Phase::new("scan").setup(0.5);
        for n in 0..4 {
            // 200 MB of I/O (2.0s) vs 1.0s of CPU on 4 lanes.
            p.disk_seq(n, 200.0 * MB as f64, node_bw);
            p.cpu(n, 1.0, 4);
        }
        let t = ex.run(p);
        assert!((t - 2.5).abs() < 1e-6, "max(2.0, 1.0) + 0.5, got {t}");
        let span = &ex.trace().spans[0];
        let u = span.util();
        // 2 disks per node × 4 nodes × 2.0s busy each.
        assert!(
            (u.disk_busy - 16.0).abs() < 1e-6,
            "disk busy {}",
            u.disk_busy
        );
        assert!((u.cpu_busy - 16.0).abs() < 1e-6, "cpu busy {}", u.cpu_busy);
        assert_eq!(u.requests, 8 + 16);
        // No contention: nothing queued.
        assert!(u.disk_wait < 1e-9 && u.cpu_wait < 1e-9);
    }

    #[test]
    fn gather_serializes_on_control_ingest() {
        let mut ex = ClusterExec::new(params());
        let bw = 100.0 * MB as f64;
        let mut p = Phase::new("gather");
        for n in 0..4 {
            // Each node ships 100 MB: sends run concurrently (1s each) but
            // the control link ingests them one after another (4s total).
            p.net_send(n, 100.0 * MB as f64, bw);
            p.gather_recv(100.0 * MB as f64, bw);
        }
        let t = ex.run(p);
        assert!((t - 4.0).abs() < 1e-6, "serialized ingest, got {t}");
        let u = ex.trace().spans[0].util();
        // 3 of the 4 ingest requests queued: 1+2+3 = 6s of waiting.
        assert!((u.net_wait - 6.0).abs() < 1e-6, "net wait {}", u.net_wait);
    }

    #[test]
    fn phases_run_serially_and_accumulate_in_trace() {
        let mut ex = ClusterExec::new(params());
        let mut a = Phase::new("a");
        a.cpu(0, 1.0, 1);
        let ta = ex.run(a);
        let mut b = Phase::new("b");
        b.cpu(0, 2.0, 1);
        let tb = ex.run(b);
        assert!((ta - 1.0).abs() < 1e-9);
        assert!((tb - 2.0).abs() < 1e-9);
        assert!((ex.now_secs() - 3.0).abs() < 1e-9);
        let spans = &ex.trace().spans;
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].start, spans[0].end, "phases are back-to-back");
    }

    #[test]
    fn pure_setup_phase_advances_clock_with_no_requests() {
        let mut ex = ClusterExec::new(params());
        let t = ex.run(Phase::new("latency-only").setup(0.25));
        assert!((t - 0.25).abs() < 1e-9);
        assert!(ex.trace().spans[0].contribs.is_empty());
    }

    #[test]
    fn resource_reports_cover_all_nodes_and_control() {
        let p = params();
        let resources_per_node = 1 + p.disks_per_node as usize + 2;
        let mut ex = ClusterExec::new(p);
        let mut ph = Phase::new("work");
        ph.cpu(1, 1.0, 2);
        ex.run(ph);
        let reports = ex.resource_reports();
        assert_eq!(reports.len(), 4 * resources_per_node + 1);
        let cpu1 = reports.iter().find(|r| r.name == "node1.cpu").unwrap();
        assert!((cpu1.busy_secs - 2.0).abs() < 1e-9);
        assert_eq!(cpu1.completions, 2);
        assert_eq!(reports.last().unwrap().name, "control.rx");
    }
}
