//! Property tests for the hardware model: the similitude invariant and
//! resource-charging arithmetic.

use cluster::{Cluster, Params};
use proptest::prelude::*;
use simkit::Sim;
use std::cell::Cell;
use std::rc::Rc;

/// Simulated seconds for one node-to-node transfer of `bytes`.
fn time_transfer(params: &Params, bytes: u64) -> f64 {
    let mut sim: Sim<()> = Sim::new();
    let c = Cluster::build(&mut sim, params.clone());
    let done: Rc<Cell<u64>> = Rc::default();
    let d = done.clone();
    c.transfer(&mut sim, 0, 1, bytes, Box::new(move |s, _| d.set(s.now())));
    sim.run(&mut ());
    simkit::as_secs(done.get())
}

proptest! {
    /// The core similitude identity: a bandwidth-bound transfer of
    /// `bytes / k` under `scaled(k)` takes the same simulated time as
    /// `bytes` at full scale.
    #[test]
    fn transfer_time_invariant_under_similitude(
        k in 1.0f64..1e6,
        mb in 1.0f64..10_000.0,
    ) {
        let base = Params::paper_dss();
        let scaled = base.scaled(k);
        let bytes = (mb * 1e6) as u64;
        let scaled_bytes = ((bytes as f64) / k) as u64;
        // The invariant holds above byte quantization: a paper-scale
        // payload that scales below ~100 bytes is dominated by rounding
        // (the engines never move such sizes through the bandwidth model).
        prop_assume!(scaled_bytes >= 100);

        let t_full = time_transfer(&base, bytes);
        let t_scaled = time_transfer(&scaled, scaled_bytes);
        let rel = (t_full - t_scaled).abs() / t_full.max(1e-12);
        prop_assert!(rel < 0.02, "full {t_full} vs scaled {t_scaled} (k={k})");
    }

    /// Fixed latencies are untouched by scaling at any k.
    #[test]
    fn fixed_quantities_never_scale(k in 1.0f64..1e7) {
        let base = Params::paper_dss();
        let s = base.scaled(k);
        prop_assert_eq!(s.task_startup, base.task_startup);
        prop_assert_eq!(s.disk_seek, base.disk_seek);
        prop_assert_eq!(s.net_latency, base.net_latency);
        prop_assert_eq!(s.job_overhead, base.job_overhead);
        prop_assert_eq!(s.nodes, base.nodes);
        prop_assert_eq!(s.map_slots_per_node, base.map_slots_per_node);
        prop_assert_eq!(s.hdfs_replication, base.hdfs_replication);
        prop_assert_eq!(s.mongo_read_per_miss, base.mongo_read_per_miss);
        prop_assert_eq!(s.checkpoint_interval, base.checkpoint_interval);
    }

    /// Disk reads cost exactly seek + transfer, and sequential reads omit
    /// the seek.
    #[test]
    fn disk_cost_arithmetic(kb in 1u64..100_000) {
        let params = Params::paper_dss();
        let bytes = kb * 1024;
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::build(&mut sim, params.clone());
        let t_rand: Rc<Cell<u64>> = Rc::default();
        let t_seq: Rc<Cell<u64>> = Rc::default();
        let (a, b) = (t_rand.clone(), t_seq.clone());
        c.disk_read_rand(&mut sim, 0, 0, bytes, Box::new(move |s, _| a.set(s.now())));
        c.disk_read_seq(&mut sim, 1, 0, bytes, Box::new(move |s, _| b.set(s.now())));
        sim.run(&mut ());
        let expect_seq = bytes as f64 / params.disk_seq_bw;
        let got_seq = simkit::as_secs(t_seq.get());
        prop_assert!((got_seq - expect_seq).abs() < 1e-6);
        let got_rand = simkit::as_secs(t_rand.get());
        prop_assert!((got_rand - (expect_seq + params.disk_seek)).abs() < 1e-6);
    }
}
