//! Table 6: the five YCSB workloads.

use crate::generators::{scramble, Latest, Zipfian};
use rand::Rng;

/// Operation types across all workloads.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpType {
    Read,
    Update,
    /// Append of the next-greater key (the paper's D/E insert semantics).
    Insert,
    Scan,
}

impl OpType {
    pub fn label(&self) -> &'static str {
        match self {
            OpType::Read => "read",
            OpType::Update => "update",
            OpType::Insert => "append",
            OpType::Scan => "scan",
        }
    }
}

/// One generated request.
#[derive(Clone, Copy, Debug)]
pub struct Op {
    pub ty: OpType,
    pub key: u64,
    pub scan_len: usize,
}

/// A workload definition (operation mix + request distribution).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// 50% reads, 50% updates, zipfian.
    A,
    /// 95% reads, 5% updates, zipfian.
    B,
    /// 100% reads, zipfian.
    C,
    /// 95% reads (latest), 5% appends.
    D,
    /// 95% scans, 5% appends.
    E,
}

impl Workload {
    pub fn all() -> [Workload; 5] {
        [
            Workload::A,
            Workload::B,
            Workload::C,
            Workload::D,
            Workload::E,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            Workload::A => "A",
            Workload::B => "B",
            Workload::C => "C",
            Workload::D => "D",
            Workload::E => "E",
        }
    }

    /// Paper description (Table 6).
    pub fn description(&self) -> &'static str {
        match self {
            Workload::A => "Update heavy: Read 50%, Update 50%",
            Workload::B => "Read heavy: Read 95%, Update 5%",
            Workload::C => "Read only: Read 100%",
            Workload::D => "Read latest: Read 95%, Append 5%",
            Workload::E => "Short ranges: Scan 95%, Append 5%",
        }
    }

    /// Does this workload mutate the key space (drop + reload after)?
    pub fn appends(&self) -> bool {
        matches!(self, Workload::D | Workload::E)
    }
}

/// Stateful request generator for one benchmark run.
pub struct OpGenerator {
    workload: Workload,
    zipf: Zipfian,
    latest: Latest,
    n_initial: u64,
    appended: u64,
    max_scan_len: usize,
}

impl OpGenerator {
    pub fn new(workload: Workload, n_records: u64, max_scan_len: usize) -> OpGenerator {
        OpGenerator {
            workload,
            zipf: Zipfian::new(n_records),
            latest: Latest::new(n_records),
            n_initial: n_records,
            appended: 0,
            max_scan_len,
        }
    }

    /// Total records currently in the store.
    pub fn current_records(&self) -> u64 {
        self.n_initial + self.appended
    }

    /// Generate the next request.
    pub fn next_op(&mut self, rng: &mut impl Rng) -> Op {
        let n = self.current_records();
        let roll: f64 = rng.gen();
        match self.workload {
            Workload::A | Workload::B | Workload::C => {
                let read_frac = match self.workload {
                    Workload::A => 0.5,
                    Workload::B => 0.95,
                    _ => 1.0,
                };
                let key = scramble(self.zipf.next(rng), self.n_initial);
                Op {
                    ty: if roll < read_frac {
                        OpType::Read
                    } else {
                        OpType::Update
                    },
                    key,
                    scan_len: 0,
                }
            }
            Workload::D => {
                if roll < 0.95 {
                    Op {
                        ty: OpType::Read,
                        key: self.latest.next(rng, n),
                        scan_len: 0,
                    }
                } else {
                    self.appended += 1;
                    Op {
                        ty: OpType::Insert,
                        key: n,
                        scan_len: 0,
                    }
                }
            }
            Workload::E => {
                if roll < 0.95 {
                    let start = scramble(self.zipf.next(rng), self.n_initial);
                    Op {
                        ty: OpType::Scan,
                        key: start,
                        scan_len: rng.gen_range(1..=self.max_scan_len),
                    }
                } else {
                    self.appended += 1;
                    Op {
                        ty: OpType::Insert,
                        key: n,
                        scan_len: 0,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn mix_of(w: Workload, draws: usize) -> HashMap<OpType, usize> {
        let mut g = OpGenerator::new(w, 10_000, 1000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = HashMap::new();
        for _ in 0..draws {
            let op = g.next_op(&mut rng);
            *m.entry(op.ty).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn workload_mixes_match_table6() {
        let a = mix_of(Workload::A, 20_000);
        let reads = a[&OpType::Read] as f64 / 20_000.0;
        assert!((reads - 0.5).abs() < 0.02, "A is 50/50, got {reads}");

        let b = mix_of(Workload::B, 20_000);
        let reads = b[&OpType::Read] as f64 / 20_000.0;
        assert!((reads - 0.95).abs() < 0.01);

        let c = mix_of(Workload::C, 5_000);
        assert_eq!(c[&OpType::Read], 5_000);

        let d = mix_of(Workload::D, 20_000);
        assert!(d.contains_key(&OpType::Insert) && d.contains_key(&OpType::Read));

        let e = mix_of(Workload::E, 20_000);
        let scans = e[&OpType::Scan] as f64 / 20_000.0;
        assert!((scans - 0.95).abs() < 0.01);
    }

    #[test]
    fn appends_use_monotonically_increasing_keys() {
        let mut g = OpGenerator::new(Workload::D, 1_000, 1000);
        let mut rng = StdRng::seed_from_u64(8);
        let mut last = 999;
        let mut seen_append = false;
        for _ in 0..5_000 {
            let op = g.next_op(&mut rng);
            if op.ty == OpType::Insert {
                assert!(op.key > last, "append keys must increase");
                last = op.key;
                seen_append = true;
            } else {
                assert!(op.key < g.current_records());
            }
        }
        assert!(seen_append);
    }

    #[test]
    fn scan_lengths_bounded_by_1000() {
        let mut g = OpGenerator::new(Workload::E, 10_000, 1000);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2_000 {
            let op = g.next_op(&mut rng);
            if op.ty == OpType::Scan {
                assert!((1..=1000).contains(&op.scan_len));
            }
        }
    }
}
