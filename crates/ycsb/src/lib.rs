//! # ycsb — the Yahoo! Cloud Serving Benchmark (Cooper et al., SoCC 2010)
//!
//! Everything §3.4 of the paper uses:
//!
//! * [`generators`] — the YCSB request distributions: scrambled zipfian
//!   (θ = 0.99), "latest", and uniform,
//! * [`workload`] — Table 6's five workloads (A: 50/50 update-heavy,
//!   B: 95/5 read-heavy, C: read-only, D: read-latest + appends,
//!   E: short scans + appends),
//! * [`driver`] — the client harness: 800 client threads (100 per client
//!   node), each throttled to its share of the target throughput; the
//!   benchmark reports *achieved* throughput and per-operation-type
//!   latency, measured after a warm-up window — exactly the
//!   latency-vs-throughput methodology behind Figures 2–6.
//!
//! The driver talks to any [`driver::Store`] — adapters for the
//! `sqlengine` (SQL-CS) and `docstore` (Mongo-AS / Mongo-CS) clusters are
//! provided in [`stores`].

#![forbid(unsafe_code)]

pub mod driver;
pub mod generators;
pub mod stores;
pub mod workload;

pub use driver::{run_workload, run_workload_observed, OpObserver, RunConfig, RunResult, Store};
pub use workload::{Op, OpType, Workload};
