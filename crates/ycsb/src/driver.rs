//! The client harness: throttled threads, warm-up, latency measurement.
//!
//! YCSB methodology (§3.4.3): the user sets a *target* throughput; the
//! client threads throttle themselves to it; the benchmark reports the
//! *achieved* throughput and the average latency per operation type. The
//! target is raised until the achieved throughput stops increasing — those
//! (throughput, latency) pairs are Figures 2–6.

use crate::workload::{Op, OpGenerator, OpType, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simkit::stats::{LatencyHistogram, OnlineStats};
use simkit::{secs, Sim, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

type S = Sim<()>;
pub type Done = Box<dyn FnOnce(&mut S, u64)>;

/// Anything the driver can benchmark.
pub trait Store {
    /// Issue one operation; `done` receives a result value
    /// (`u64::MAX` = the store has crashed).
    fn do_op(self: Rc<Self>, sim: &mut S, op: Op, done: Done);
    /// Has the store crashed (stops the run)?
    fn crashed(&self) -> bool {
        false
    }
    /// Which shard/partition serves point ops on `key`, if the store is
    /// sharded (`None` for unsharded stores and stores that won't say).
    /// Purely informational — used to label observer samples.
    fn shard_of(&self, _key: u64) -> Option<usize> {
        None
    }
}

/// Passive observer of completed operations. `on_op` fires for every
/// completed op — warm-up included, so observers see the full run and can
/// window it themselves — with the op's type label, the serving shard (when
/// the store is sharded), the issuing client thread's index (stable across
/// the run, so multi-tenant profiles can partition clients into tenants),
/// the completion time, and the measured latency. Observers get no handle
/// back into the simulation or the driver, so attaching one cannot change
/// throughput or latency results.
pub trait OpObserver {
    fn on_op(
        &mut self,
        ty: OpType,
        shard: Option<usize>,
        client: u32,
        at: SimTime,
        latency: SimTime,
    );
}

/// One benchmark run's configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    pub target_ops_per_sec: f64,
    /// Client threads (the paper: 8 nodes × 100 threads).
    pub threads: usize,
    pub warmup_secs: f64,
    pub measure_secs: f64,
    pub seed: u64,
    /// Records loaded before the run (already similitude-scaled).
    pub n_records: u64,
    pub max_scan_len: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            target_ops_per_sec: 1000.0,
            threads: 800,
            warmup_secs: 5.0,
            measure_secs: 10.0,
            seed: 42,
            n_records: 100_000,
            max_scan_len: 1000,
        }
    }
}

/// Per-operation-type latency summary (milliseconds).
#[derive(Clone, Debug, Default)]
pub struct LatencySummary {
    pub mean_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub count: u64,
    /// Standard error across measurement intervals (the error bars the
    /// paper plots).
    pub std_err_ms: f64,
}

/// Result of one run.
#[derive(Clone, Debug, Default)]
pub struct RunResult {
    pub target_ops: f64,
    pub achieved_ops: f64,
    pub latencies: HashMap<OpType, LatencySummary>,
    pub crashed: bool,
}

struct Measure {
    hist: LatencyHistogram,
    interval_means: OnlineStats,
    cur_sum: f64,
    cur_n: u64,
}

impl Measure {
    fn new() -> Self {
        Measure {
            hist: LatencyHistogram::new(),
            interval_means: OnlineStats::new(),
            cur_sum: 0.0,
            cur_n: 0,
        }
    }

    fn tick(&mut self) {
        if self.cur_n > 0 {
            self.interval_means.push(self.cur_sum / self.cur_n as f64);
        }
        self.cur_sum = 0.0;
        self.cur_n = 0;
    }
}

struct DriverState {
    gen: OpGenerator,
    rng: StdRng,
    measures: HashMap<OpType, Measure>,
    completed_in_window: u64,
    crashed: bool,
    issued: u64,
}

struct Driver {
    store: Rc<dyn Store>,
    state: RefCell<DriverState>,
    observer: Option<Rc<RefCell<dyn OpObserver>>>,
    warm_start: SimTime,
    end: SimTime,
    interval: SimTime,
}

impl Driver {
    fn record(&self, start: SimTime, now: SimTime, client: u32, op: Op, result: u64) {
        let mut st = self.state.borrow_mut();
        if result == u64::MAX {
            st.crashed = true;
            return;
        }
        let lat = now - start;
        if let Some(obs) = &self.observer {
            obs.borrow_mut()
                .on_op(op.ty, self.store.shard_of(op.key), client, now, lat);
        }
        if now < self.warm_start || now > self.end {
            return;
        }
        st.completed_in_window += 1;
        let m = st.measures.entry(op.ty).or_insert_with(Measure::new);
        m.hist.record(lat);
        m.cur_sum += simkit::as_millis(lat);
        m.cur_n += 1;
    }
}

fn issue_loop(driver: Rc<Driver>, due: SimTime, client: u32, sim: &mut S) {
    if sim.now() >= driver.end || driver.store.crashed() || driver.state.borrow().crashed {
        return;
    }
    let op = {
        let mut st = driver.state.borrow_mut();
        st.issued += 1;
        let mut rng_op = {
            let st = &mut *st;
            st.gen.next_op(&mut st.rng)
        };
        // The driver owns append-key assignment so every store sees the
        // same monotone key sequence.
        if rng_op.ty == OpType::Insert {
            rng_op.key = st.gen.current_records() - 1;
        }
        rng_op
    };
    let start = sim.now();
    let d2 = driver.clone();
    driver.store.clone().do_op(
        sim,
        op,
        Box::new(move |sim, result| {
            d2.record(start, sim.now(), client, op, result);
            let next_due = (due + d2.interval).max(sim.now());
            let d3 = d2.clone();
            sim.schedule_at(
                next_due,
                Box::new(move |sim, _| issue_loop(d3, next_due, client, sim)),
            );
        }),
    );
}

/// Run one workload against a store inside `sim`. The caller must have
/// loaded `cfg.n_records` into the store already.
pub fn run_workload(
    sim: &mut S,
    store: Rc<dyn Store>,
    workload: Workload,
    cfg: &RunConfig,
) -> RunResult {
    run_workload_observed(sim, store, workload, cfg, None)
}

/// [`run_workload`] with an optional passive [`OpObserver`] attached.
/// The observer cannot influence the run: results are byte-identical with
/// and without one.
pub fn run_workload_observed(
    sim: &mut S,
    store: Rc<dyn Store>,
    workload: Workload,
    cfg: &RunConfig,
    observer: Option<Rc<RefCell<dyn OpObserver>>>,
) -> RunResult {
    let warm_start = secs(cfg.warmup_secs);
    let end = secs(cfg.warmup_secs + cfg.measure_secs);
    let driver = Rc::new(Driver {
        store,
        observer,
        state: RefCell::new(DriverState {
            gen: OpGenerator::new(workload, cfg.n_records, cfg.max_scan_len),
            rng: StdRng::seed_from_u64(cfg.seed),
            measures: HashMap::new(),
            completed_in_window: 0,
            crashed: false,
            issued: 0,
        }),
        warm_start,
        end,
        interval: secs(cfg.threads as f64 / cfg.target_ops_per_sec),
    });

    // 10-second interval ticks for std-err accounting (like the paper's
    // 60 × 10 s samples).
    let tick = secs(10.0_f64.min(cfg.measure_secs / 3.0));
    let mut t = warm_start + tick;
    while t <= end {
        let d = driver.clone();
        sim.schedule_at(
            t,
            Box::new(move |_, _| {
                for m in d.state.borrow_mut().measures.values_mut() {
                    m.tick();
                }
            }),
        );
        t += tick;
    }

    // Launch the client threads with staggered start offsets.
    for i in 0..cfg.threads {
        let d = driver.clone();
        let offset = (driver.interval / cfg.threads.max(1) as u64) * i as u64;
        sim.schedule_at(
            offset,
            Box::new(move |sim, _| issue_loop(d, sim.now(), i as u32, sim)),
        );
    }

    sim.run_until(&mut (), end + secs(5.0));

    let st = driver.state.borrow();
    let mut latencies = HashMap::new();
    for (ty, m) in &st.measures {
        latencies.insert(
            *ty,
            LatencySummary {
                mean_ms: simkit::as_millis(m.hist.mean() as SimTime),
                p95_ms: simkit::as_millis(m.hist.quantile(0.95)),
                p99_ms: simkit::as_millis(m.hist.quantile(0.99)),
                count: m.hist.count(),
                std_err_ms: m.interval_means.std_err(),
            },
        );
    }
    RunResult {
        target_ops: cfg.target_ops_per_sec,
        achieved_ops: st.completed_in_window as f64 / cfg.measure_secs,
        latencies,
        crashed: st.crashed || driver.store.crashed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A store with a fixed 1 ms service time and unlimited parallelism.
    struct FastStore;
    impl Store for FastStore {
        fn do_op(self: Rc<Self>, sim: &mut S, _op: Op, done: Done) {
            sim.after(simkit::millis(1.0), move |sim, _| done(sim, 0));
        }
    }

    /// A store that saturates at 500 ops/s (one server, 2 ms service).
    struct SlowStore {
        server: simkit::ResourceId,
    }
    impl Store for SlowStore {
        fn do_op(self: Rc<Self>, sim: &mut S, _op: Op, done: Done) {
            sim.request(
                self.server,
                simkit::millis(2.0),
                Box::new(move |sim, _| done(sim, 0)),
            );
        }
    }

    #[test]
    fn achieves_target_when_underloaded() {
        let mut sim: S = Sim::new();
        let cfg = RunConfig {
            target_ops_per_sec: 2_000.0,
            threads: 50,
            warmup_secs: 1.0,
            measure_secs: 4.0,
            n_records: 10_000,
            ..RunConfig::default()
        };
        let r = run_workload(&mut sim, Rc::new(FastStore), Workload::C, &cfg);
        assert!(
            (r.achieved_ops - 2_000.0).abs() / 2_000.0 < 0.05,
            "achieved {}",
            r.achieved_ops
        );
        let read = &r.latencies[&OpType::Read];
        assert!((read.mean_ms - 1.0).abs() < 0.05, "mean {}", read.mean_ms);
        assert!(!r.crashed);
    }

    #[test]
    fn saturates_below_target_when_overloaded() {
        let mut sim: S = Sim::new();
        let server = sim.add_resource("srv", 1);
        let cfg = RunConfig {
            target_ops_per_sec: 2_000.0, // capacity is only 500/s
            threads: 20,
            warmup_secs: 1.0,
            measure_secs: 4.0,
            n_records: 10_000,
            ..RunConfig::default()
        };
        let r = run_workload(&mut sim, Rc::new(SlowStore { server }), Workload::C, &cfg);
        assert!(
            r.achieved_ops < 600.0,
            "can't exceed capacity: {}",
            r.achieved_ops
        );
        // Latency must have exploded (closed-loop queueing).
        assert!(r.latencies[&OpType::Read].mean_ms > 10.0);
    }

    #[test]
    fn latency_vs_throughput_curve_shape() {
        // As target rises, achieved rises then flattens; latency rises.
        let mut achieved = Vec::new();
        let mut lat = Vec::new();
        for target in [200.0, 400.0, 2_000.0] {
            let mut sim: S = Sim::new();
            let server = sim.add_resource("srv", 1);
            let cfg = RunConfig {
                target_ops_per_sec: target,
                threads: 20,
                warmup_secs: 1.0,
                measure_secs: 3.0,
                n_records: 10_000,
                ..RunConfig::default()
            };
            let r = run_workload(&mut sim, Rc::new(SlowStore { server }), Workload::C, &cfg);
            achieved.push(r.achieved_ops);
            lat.push(r.latencies[&OpType::Read].mean_ms);
        }
        assert!(achieved[1] > achieved[0] * 1.5, "{achieved:?}");
        assert!(achieved[2] < 600.0, "{achieved:?}");
        assert!(lat[2] > lat[0] * 2.0, "{lat:?}");
    }

    #[test]
    fn mixed_workload_reports_both_op_types() {
        let mut sim: S = Sim::new();
        let cfg = RunConfig {
            target_ops_per_sec: 1_000.0,
            threads: 10,
            warmup_secs: 0.5,
            measure_secs: 2.0,
            n_records: 10_000,
            ..RunConfig::default()
        };
        let r = run_workload(&mut sim, Rc::new(FastStore), Workload::A, &cfg);
        assert!(r.latencies.contains_key(&OpType::Read));
        assert!(r.latencies.contains_key(&OpType::Update));
        let n: u64 = r.latencies.values().map(|l| l.count).sum();
        assert!(n > 1_000);
    }
}
