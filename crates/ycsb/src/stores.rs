//! [`Store`] adapters for the three systems of §3.4: SQL-CS, Mongo-AS,
//! Mongo-CS.

use crate::driver::{Done, Store};
use crate::workload::{Op, OpType};
use docstore::MongoCluster;
use simkit::Sim;
use sqlengine::SqlCluster;
use std::rc::Rc;

type S = Sim<()>;

impl Store for SqlCluster {
    fn do_op(self: Rc<Self>, sim: &mut S, op: Op, done: Done) {
        match op.ty {
            OpType::Read => self.read(sim, op.key, done),
            OpType::Update => self.update(sim, op.key, done),
            OpType::Insert => self.insert(sim, op.key, done),
            OpType::Scan => self.scan(sim, op.key, op.scan_len, done),
        }
    }

    fn shard_of(&self, key: u64) -> Option<usize> {
        Some(sqlengine::sharded::shard_of(key, self.nodes.len()))
    }
}

impl Store for MongoCluster {
    fn do_op(self: Rc<Self>, sim: &mut S, op: Op, done: Done) {
        match op.ty {
            OpType::Read => self.read(sim, op.key, done),
            OpType::Update => self.write(sim, op.key, false, done),
            OpType::Insert => self.write(sim, op.key, true, done),
            OpType::Scan => self.scan(sim, op.key, op.scan_len, done),
        }
    }

    fn crashed(&self) -> bool {
        self.crashed.get()
    }

    fn shard_of(&self, key: u64) -> Option<usize> {
        Some(MongoCluster::shard_of(self, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunConfig};
    use crate::workload::Workload;
    use cluster::Params;
    use docstore::Sharding;

    fn cfg(target: f64, n: u64) -> RunConfig {
        RunConfig {
            target_ops_per_sec: target,
            threads: 100,
            warmup_secs: 1.0,
            measure_secs: 3.0,
            n_records: n,
            ..RunConfig::default()
        }
    }

    fn params() -> Params {
        // 640 M records / 2500 = 256 k records; 32 GB / 2500 ≈ 13 MB/node.
        Params::paper_ycsb().scaled_ycsb(2_500.0)
    }

    #[test]
    fn sql_cs_runs_workload_c() {
        let mut sim: S = Sim::new();
        let sql = SqlCluster::build(&mut sim, &params());
        let n = 256_000;
        sql.load(n);
        let r = run_workload(&mut sim, sql.clone(), Workload::C, &cfg(2_000.0, n));
        assert!(r.achieved_ops > 1_000.0, "achieved {}", r.achieved_ops);
        assert!(r.latencies[&OpType::Read].mean_ms > 0.0);
        assert!(!r.crashed);
    }

    #[test]
    fn mongo_reads_are_slower_than_sql_under_load() {
        // Figure 2's core claim: at the same disk-bound read-only load,
        // Mongo's 32 KB reads waste bandwidth → lower peak, higher latency.
        let n = 256_000;
        let target = 12_000.0;

        let mut sim1: S = Sim::new();
        let sql = SqlCluster::build(&mut sim1, &params());
        sql.load(n);
        let rs = run_workload(&mut sim1, sql.clone(), Workload::C, &cfg(target, n));

        let mut sim2: S = Sim::new();
        let mongo = MongoCluster::build(&mut sim2, &params(), Sharding::Range);
        mongo.load(n);
        let rm = run_workload(&mut sim2, mongo.clone(), Workload::C, &cfg(target, n));

        assert!(
            rs.achieved_ops >= rm.achieved_ops,
            "SQL {} vs Mongo {}",
            rs.achieved_ops,
            rm.achieved_ops
        );
    }

    #[test]
    fn mongo_as_crashes_on_workload_d_flood() {
        let n = 256_000;
        let mut sim: S = Sim::new();
        let mongo = MongoCluster::build(&mut sim, &params(), Sharding::Range);
        mongo.load(n);
        mongo.split_docs.set(2_000);
        // Hammer appends way past what the last chunk's mongod can absorb.
        let mut c = cfg(400_000.0, n);
        c.threads = 800;
        c.warmup_secs = 2.0;
        c.measure_secs = 6.0;
        let r = run_workload(&mut sim, mongo.clone(), Workload::D, &c);
        assert!(
            r.crashed || mongo.migrations.get() > 0,
            "append storm should at least trigger migrations"
        );
    }
}
