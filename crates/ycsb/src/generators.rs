//! YCSB key-choice distributions.
//!
//! ```
//! use rand::SeedableRng;
//! use ycsb::generators::{scramble, Zipfian};
//!
//! let z = Zipfian::new(1_000);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let rank = z.next(&mut rng);
//! assert!(rank < 1_000);
//! assert!(scramble(rank, 1_000) < 1_000);
//! ```

use rand::Rng;

/// Zipfian over `[0, n)` with the YCSB constant θ = 0.99, using the
/// Gray et al. rejection-free method (as in YCSB's `ZipfianGenerator`).
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    pub fn new(n: u64) -> Zipfian {
        Self::with_theta(n, 0.99)
    }

    pub fn with_theta(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0);
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Draw a rank in `[0, n)` (0 is the hottest item).
    pub fn next(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Grow the item space (used by the "latest" distribution as records
    /// are appended). Incremental zeta update keeps this O(delta).
    pub fn grow(&mut self, new_n: u64) {
        if new_n <= self.n {
            return;
        }
        for i in self.n + 1..=new_n {
            self.zetan += 1.0 / (i as f64).powf(self.theta);
        }
        self.n = new_n;
        self.eta =
            (1.0 - (2.0 / new_n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zetan);
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // For the huge key spaces YCSB uses, sample-based approximation would
    // drift; n here is bounded by the scaled record count, so direct
    // summation is fine (capped for safety).
    let cap = n.min(50_000_000);
    let mut sum = 0.0;
    for i in 1..=cap {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

/// FNV-1a scramble, so zipfian *ranks* map to scattered keys
/// (YCSB's `ScrambledZipfianGenerator`).
pub fn scramble(rank: u64, n: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in rank.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h % n
}

/// The "latest" distribution: zipfian over recency, so the most recently
/// inserted keys are the hottest (workload D).
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    pub fn new(n: u64) -> Latest {
        Latest {
            zipf: Zipfian::new(n),
        }
    }

    /// Draw a key given the current maximum key (exclusive).
    pub fn next(&mut self, rng: &mut impl Rng, max_key: u64) -> u64 {
        self.zipf.grow(max_key);
        let back = self.zipf.next(rng);
        max_key - 1 - back.min(max_key - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(10_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..100_000 {
            let v = z.next(&mut rng) as usize;
            counts[v] += 1;
        }
        // Rank 0 should be far hotter than the median rank.
        assert!(counts[0] > 5_000, "rank0={}", counts[0]);
        assert!(counts[0] > 50 * counts[5000].max(1));
        // All draws in range (checked by indexing above).
    }

    #[test]
    fn zipfian_theta_zero_is_uniformish() {
        let z = Zipfian::with_theta(100, 0.01);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 3.0, "θ≈0 should be near uniform");
    }

    #[test]
    fn scramble_spreads_hot_ranks() {
        let a = scramble(0, 1_000_000);
        let b = scramble(1, 1_000_000);
        assert_ne!(a, b);
        assert!(a < 1_000_000 && b < 1_000_000);
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let mut l = Latest::new(1_000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut recent = 0;
        const DRAWS: usize = 10_000;
        for _ in 0..DRAWS {
            let k = l.next(&mut rng, 100_000);
            assert!(k < 100_000);
            if k >= 99_000 {
                recent += 1;
            }
        }
        // The top 1% of keys should draw far more than 1% of requests.
        assert!(
            recent > DRAWS / 3,
            "latest distribution too flat: {recent}/{DRAWS}"
        );
    }

    #[test]
    fn grow_keeps_distribution_valid() {
        let mut z = Zipfian::new(100);
        z.grow(200);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(z.next(&mut rng) < 200);
        }
    }
}
