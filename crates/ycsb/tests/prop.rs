//! Property tests for the workload generators: bounds, skew, and mix.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ycsb::generators::{scramble, Latest, Zipfian};
use ycsb::workload::{OpGenerator, OpType, Workload};

proptest! {
    #[test]
    fn zipfian_stays_in_range(n in 1u64..1_000_000, seed in any::<u64>()) {
        let z = Zipfian::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.next(&mut rng) < n);
        }
    }

    #[test]
    fn zipfian_rank0_is_modal(n in 100u64..100_000, seed in any::<u64>()) {
        let z = Zipfian::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rank0 = 0u32;
        let mut above_half = 0u32;
        for _ in 0..2_000 {
            let v = z.next(&mut rng);
            if v == 0 { rank0 += 1; }
            if v >= n / 2 { above_half += 1; }
        }
        // θ=0.99: the single hottest rank draws on the same order as the
        // entire cold half of the keyspace.
        prop_assert!(rank0 * 2 > above_half, "rank0={rank0} cold-half={above_half}");
    }

    #[test]
    fn scramble_is_bounded_and_deterministic(rank in any::<u64>(), n in 1u64..1_000_000) {
        let a = scramble(rank, n);
        prop_assert!(a < n);
        prop_assert_eq!(a, scramble(rank, n));
    }

    #[test]
    fn latest_is_bounded_and_recent_heavy(seed in any::<u64>(), max in 1_000u64..100_000) {
        let mut l = Latest::new(1_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut recent = 0u32;
        const DRAWS: u32 = 500;
        for _ in 0..DRAWS {
            let k = l.next(&mut rng, max);
            prop_assert!(k < max);
            if k >= max - max / 100 - 1 { recent += 1; }
        }
        // The newest 1% draws far more than 1% of requests.
        prop_assert!(recent > DRAWS / 10, "recent={recent}");
    }

    #[test]
    fn op_generator_respects_keyspace(seed in any::<u64>(), n in 100u64..50_000) {
        for w in Workload::all() {
            let mut g = OpGenerator::new(w, n, 1000);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..300 {
                let op = g.next_op(&mut rng);
                match op.ty {
                    OpType::Insert => prop_assert!(op.key >= n, "appends beyond keyspace"),
                    _ => prop_assert!(op.key < g.current_records()),
                }
                if op.ty == OpType::Scan {
                    prop_assert!((1..=1000).contains(&op.scan_len));
                }
            }
        }
    }
}
