//! Offline stand-in for the `criterion` crate.
//!
//! Provides the small API surface this workspace's benches use —
//! `benchmark_group`/`BenchmarkGroup`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a plain wall-clock timing loop instead of
//! criterion's statistical machinery. Good enough to keep `cargo bench`
//! compiling and producing indicative numbers without network access.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// Mean wall-clock time per iteration, recorded by `iter`/`iter_batched`.
    elapsed_per_iter: Duration,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            elapsed_per_iter: Duration::ZERO,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up once, then time a batch sized to take roughly 50ms.
        black_box(routine());
        let probe = Instant::now();
        black_box(routine());
        let one = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(50).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / iters;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let probe = Instant::now();
        black_box(routine(setup()));
        let one = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(50).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u32;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed_per_iter = start.elapsed() / iters;
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        let per_iter = b.elapsed_per_iter;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let mbps = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
                format!("  ({mbps:.1} MiB/s)")
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let eps = n as f64 / per_iter.as_secs_f64();
                format!("  ({eps:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!("{}/{id}: {per_iter:?}/iter{rate}", self.name);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        println!("bench/{id}: {:?}/iter", b.elapsed_per_iter);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
