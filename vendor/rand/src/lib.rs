//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of `rand` 0.8 it uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `fill_bytes`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`rngs::mock::StepRng`]. `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 — deterministic and statistically solid for simulation use,
//! but NOT the same stream as upstream `StdRng` (ChaCha12), so seeded
//! sequences differ from runs against the real crate.

use std::fmt;

/// Error type for fallible generation (never produced by these generators).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core generator interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible by [`Rng::gen`] (the real crate's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
std_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
         usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
         i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng` (only the
/// `seed_from_u64` entry point this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: expands a 64-bit seed into a well-mixed stream; used to
    /// seed xoshiro and usable on its own.
    #[inline]
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Deterministic general-purpose generator (xoshiro256++). Takes the
    /// place of upstream `StdRng`; the seeded stream differs from upstream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// Arithmetic-sequence "generator" for deterministic benchmarks.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, step: u64) -> StepRng {
                StepRng { v: initial, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let v = self.v;
                self.v = self.v.wrapping_add(self.step);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&w));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
