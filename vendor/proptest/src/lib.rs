//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest it uses: the `proptest!` macro, `prop_assert*!` /
//! `prop_assume!`, `Strategy` with `prop_map` / `prop_filter` / `boxed`,
//! `Just`, `prop_oneof!`, `any::<T>()`, integer/float range strategies,
//! `proptest::collection::vec`, tuple strategies, and a small regex-class
//! string strategy (`"[a-z]{0,6}"`-style patterns).
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (hash of the test name), and there is **no shrinking** — a
//! failing case is reported as generated.

pub mod strategy {
    use std::rc::Rc;

    /// Deterministic generator state (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E3779B97F4A7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A value generator. Upstream proptest builds shrinkable value trees;
    /// this stand-in generates plain values.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, label: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                label,
                pred,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased strategy (upstream's `BoxedStrategy`).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        label: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Upstream propagates filter misses as case-level rejects; here
            // we just redraw, with a cap so a never-true filter is an error
            // rather than a hang.
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 10000 consecutive draws",
                self.label
            );
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    // ---- primitives via `any::<T>()` -------------------------------------

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Raw-bit floats: covers negatives, subnormals, infinities and NaN, the
    // way upstream's `any::<f64>()` does; pair with `prop_filter("finite", …)`.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u32())
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (b' ' + rng.below(95) as u8) as char
        }
    }

    // ---- ranges as strategies --------------------------------------------

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    // ---- tuples of strategies --------------------------------------------

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    // ---- regex-class string strategies -----------------------------------

    /// One element of a pattern: a set of allowed chars plus a repeat range.
    struct ClassRep {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parse the tiny regex dialect used in this workspace's tests:
    /// concatenations of literal chars or `[...]` classes (char ranges,
    /// literals, and `&&[^...]` subtraction), each optionally followed by
    /// `{m}` or `{m,n}`.
    fn parse_pattern(pat: &str) -> Vec<ClassRep> {
        let mut out = Vec::new();
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pat);
                    i = next;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed repeat in pattern {pat:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!set.is_empty(), "empty char class in pattern {pat:?}");
            out.push(ClassRep {
                chars: set,
                min,
                max,
            });
        }
        out
    }

    /// Parse a `[...]` class body starting just past the `[`. Returns the
    /// allowed chars and the index just past the closing `]`.
    fn parse_class(chars: &[char], mut i: usize, pat: &str) -> (Vec<char>, usize) {
        let mut include = Vec::new();
        let mut exclude = Vec::new();
        loop {
            match chars.get(i) {
                None => panic!("unclosed char class in pattern {pat:?}"),
                Some(']') => {
                    i += 1;
                    break;
                }
                // `&&[^...]` set subtraction.
                Some('&') if chars.get(i + 1) == Some(&'&') => {
                    assert!(
                        chars.get(i + 2) == Some(&'[') && chars.get(i + 3) == Some(&'^'),
                        "only &&[^...] subtraction is supported in pattern {pat:?}"
                    );
                    i += 4;
                    while chars.get(i) != Some(&']') {
                        match chars.get(i) {
                            None => panic!("unclosed subtraction in pattern {pat:?}"),
                            Some('\\') => {
                                exclude.push(chars[i + 1]);
                                i += 2;
                            }
                            Some(&c) => {
                                exclude.push(c);
                                i += 1;
                            }
                        }
                    }
                    i += 1; // inner ']'
                }
                Some('\\') => {
                    include.push(chars[i + 1]);
                    i += 2;
                }
                Some(&lo) => {
                    // `a-z` range (the `-` must not be last-before-`]`).
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let hi = chars[i + 2];
                        for c in lo..=hi {
                            include.push(c);
                        }
                        i += 3;
                    } else {
                        include.push(lo);
                        i += 1;
                    }
                }
            }
        }
        include.retain(|c| !exclude.contains(c));
        (include, i)
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let elems = parse_pattern(self);
            let mut s = String::new();
            for e in &elems {
                let n = e.min + rng.below((e.max - e.min + 1) as u64) as usize;
                for _ in 0..n {
                    s.push(e.chars[rng.below(e.chars.len() as u64) as usize]);
                }
            }
            s
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};

    /// Size bound for `vec`: accepts `n`, `a..b`, and `a..=b`.
    pub trait SizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use super::strategy::{Strategy, TestRng};

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — draw another case.
        Reject(String),
        /// `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// Upstream defaults to 256; this stand-in uses 64 to keep the
        /// (unshrunk, deterministic) suite fast.
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drive one property: generate `config.cases` inputs from a seed
    /// derived from the test name and check each. Panics on the first
    /// failing case, printing the generated input (no shrinking).
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strat: S, mut body: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug + Clone,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        let mut rng = TestRng::new(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(20).max(1_000);
        while passed < config.cases {
            let input = strat.generate(&mut rng);
            match body(input.clone()) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "{name}: gave up after {rejected} rejected cases \
                             (last assumption: {why})"
                        );
                    }
                }
                Err(TestCaseError::Fail(why)) => {
                    panic!("{name}: property failed: {why}\n  input: {input:#?}");
                }
            }
        }
    }
}

pub mod prelude {
    pub use super::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(
                &config,
                stringify!($name),
                ($($strat,)+),
                |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let a = $a;
        let b = $b;
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)+), a, b),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    #[test]
    fn regex_classes_parse_and_generate() {
        use crate::strategy::{Strategy, TestRng};
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let s = "[a-zA-Z][a-zA-Z0-9]{0,10}".generate(&mut rng);
            assert!((1..=11).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let t = "[ -~&&[^\"]]{0,60}".generate(&mut rng);
            assert!(t.len() <= 60);
            assert!(t.chars().all(|c| (' '..='~').contains(&c) && c != '"'));
            let u = "[abc%_]{0,8}".generate(&mut rng);
            assert!(u.chars().all(|c| "abc%_".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -5i32..5, z in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..2.0).contains(&z));
        }

        #[test]
        fn vec_and_oneof_compose(
            v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2));
        }

        #[test]
        fn assume_rejects_and_retries(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
