//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the *small* slice of the `bytes` API it actually uses:
//! [`BytesMut`] as a growable byte buffer, [`BufMut`] for appending, and
//! [`Buf`] for cursor-style reads over `&[u8]`. Semantics match the real
//! crate for this surface; nothing else is provided.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer (backed by a plain `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

/// Append-side trait: write integers and slices to the end of a buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait: consume from the front of a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_i32_le(&mut self) -> i32 {
        let c = self.chunk();
        let v = i32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_bytesmut_and_slice_cursor() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_i32_le(-42);
        b.put_slice(b"abc");
        assert_eq!(b.len(), 8);

        let mut cur: &[u8] = &b;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_i32_le(), -42);
        assert_eq!(cur.remaining(), 3);
        let pos = cur.iter().position(|&c| c == b'c').unwrap();
        assert_eq!(pos, 2);
        cur.advance(3);
        assert_eq!(cur.remaining(), 0);
    }
}
