//! Auto-sharding under the microscope: what MongoDB's range partitioning
//! buys (targeted scans) and what it costs (the append hotspot that melts
//! workload D). Runs the same operations against Mongo-AS and Mongo-CS and
//! narrates the difference.
//!
//!     cargo run --release --example autosharding_demo

use elephants::cluster::Params;
use elephants::docstore::{MongoCluster, Sharding};
use elephants::simkit::{secs, Sim};
use std::cell::Cell;
use std::rc::Rc;

fn main() {
    let params = Params::paper_ycsb().scaled_ycsb(10_000.0);
    let n_records = 64_000u64;

    // ---- scans: range partitioning routes to ONE shard ----------------
    for (name, sharding) in [
        ("Mongo-AS (range)", Sharding::Range),
        ("Mongo-CS (hash)", Sharding::Hash),
    ] {
        let mut sim: Sim<()> = Sim::new();
        let m = MongoCluster::build(&mut sim, &params, sharding);
        m.load(n_records);
        let done_at: Rc<Cell<u64>> = Rc::default();
        let found: Rc<Cell<u64>> = Rc::default();
        let (d, f) = (done_at.clone(), found.clone());
        m.scan(
            &mut sim,
            10_000,
            500,
            Box::new(move |sim, n| {
                d.set(sim.now());
                f.set(n);
            }),
        );
        sim.run(&mut ());
        println!(
            "{name:>18}: scan of 500 keys → {} records in {:.1} ms (cold cache)",
            found.get(),
            elephants::simkit::as_millis(done_at.get())
        );
    }

    // ---- appends: all keys land in the LAST chunk on Mongo-AS ----------
    println!("\nappend routing (keys inserted in order):");
    let mut sim: Sim<()> = Sim::new();
    let m = MongoCluster::build(&mut sim, &params, Sharding::Range);
    m.load(n_records);
    let mut shard_hits = vec![0usize; m.shards()];
    for _ in 0..1_000 {
        let key = m.next_append_key();
        shard_hits[m.shard_of(key)] += 1;
    }
    let hot = shard_hits.iter().position(|&c| c > 0).unwrap();
    println!(
        "  Mongo-AS: 1000 appends → shard {hot} took {} of them (the hot chunk)",
        shard_hits[hot]
    );

    let mut cs_hits = 0usize;
    let mut sim2: Sim<()> = Sim::new();
    let cs = MongoCluster::build(&mut sim2, &params, Sharding::Hash);
    cs.load(n_records);
    let mut used = std::collections::HashSet::new();
    for _ in 0..1_000 {
        let key = cs.next_append_key();
        if used.insert(cs.shard_of(key)) {
            cs_hits += 1;
        }
    }
    println!("  Mongo-CS: the same 1000 appends spread over {cs_hits} shards");

    // ---- the crash: flood the hot chunk -------------------------------
    println!("\nflooding Mongo-AS with appends (splits + balancer migrations):");
    let failed: Rc<Cell<u64>> = Rc::default();
    let ok: Rc<Cell<u64>> = Rc::default();
    for i in 0..30_000u64 {
        let key = m.next_append_key();
        let (f, o, mm) = (failed.clone(), ok.clone(), m.clone());
        sim.after(secs(i as f64 * 0.000_1), move |sim, _| {
            mm.write(
                sim,
                key,
                true,
                Box::new(move |_, v| {
                    if v == elephants::docstore::cluster::CRASHED {
                        f.set(f.get() + 1);
                    } else {
                        o.set(o.get() + 1);
                    }
                }),
            );
        });
    }
    sim.run(&mut ());
    println!(
        "  {} appends succeeded, {} failed, {} chunk migrations, crashed = {}",
        ok.get(),
        failed.get(),
        m.migrations.get(),
        m.crashed.get()
    );
    println!("  (the paper's workload-D crash above a 20k ops/s target — §3.4.3)");
}
