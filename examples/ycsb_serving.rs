//! YCSB latency-vs-throughput curve for one workload across the three
//! serving systems — a miniature of Figures 2-6.
//!
//!     cargo run --release --example ycsb_serving -- [workload] [k]
//!     cargo run --release --example ycsb_serving -- B 5000

use elephants::core::serving::{run_point, ServingConfig, SystemKind};
use elephants::ycsb::workload::{OpType, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = match args.first().map(String::as_str).unwrap_or("C") {
        "A" | "a" => Workload::A,
        "B" | "b" => Workload::B,
        "D" | "d" => Workload::D,
        "E" | "e" => Workload::E,
        _ => Workload::C,
    };
    let k: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5_000.0);

    let cfg = ServingConfig {
        k,
        warmup_secs: 2.0,
        measure_secs: 4.0,
        threads: 400,
        seed: 7,
    };
    println!(
        "workload {} ({}) over {} records",
        workload.name(),
        workload.description(),
        cfg.n_records()
    );

    let targets = match workload {
        Workload::E => vec![500.0, 2_000.0, 8_000.0],
        Workload::A => vec![2_000.0, 10_000.0, 40_000.0],
        _ => vec![5_000.0, 20_000.0, 80_000.0],
    };
    for system in SystemKind::all() {
        println!("\n{}:", system.label());
        for &t in &targets {
            let p = run_point(&cfg, system, workload, t);
            let lat: Vec<String> = [OpType::Read, OpType::Update, OpType::Insert, OpType::Scan]
                .iter()
                .filter_map(|op| p.latency(*op).map(|l| format!("{} {:.1}ms", op.label(), l)))
                .collect();
            println!(
                "  target {:>7.0} → achieved {:>7.0} ops/s   {}{}",
                t,
                p.achieved_ops,
                lat.join(", "),
                if p.crashed { "   ** CRASHED **" } else { "" }
            );
            if p.crashed {
                break;
            }
        }
    }
}
