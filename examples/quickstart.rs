//! Quickstart: generate a tiny TPC-H database, run one query on both
//! engines at an emulated 250 GB scale, and run a burst of YCSB operations
//! against all three serving systems.
//!
//!     cargo run --release --example quickstart

use elephants::core::serving::{run_point, ServingConfig, SystemKind};
use elephants::hive::{load_warehouse, HiveEngine};
use elephants::pdw::{load_pdw, PdwEngine};
use elephants::relational::execute;
use elephants::tpch::{generate, GenConfig};
use elephants::ycsb::workload::{OpType, Workload};

fn main() {
    // ---- DSS side: TPC-H Q6 on Hive and PDW --------------------------
    println!("== generating TPC-H at sim scale 0.005 (a few MB) ==");
    let catalog = generate(&GenConfig::new(0.005));
    // Emulate the paper's 250 GB run: k = 250 / 0.005.
    let params = elephants::cluster::Params::paper_dss().scaled(50_000.0);

    let (warehouse, hive_load) = load_warehouse(&catalog, &params, None).expect("load");
    let hive = HiveEngine::new(warehouse);
    let (pdw_cat, pdw_load) = load_pdw(&catalog, &params);
    let pdw = PdwEngine::new(pdw_cat);
    println!(
        "loaded: hive {:.0} min, pdw {:.0} min (simulated)",
        hive_load.total_secs / 60.0,
        pdw_load.total_secs / 60.0
    );

    let plan = elephants::tpch::query(6);
    let hive_run = hive.run_query(&plan).expect("hive q6");
    let pdw_run = pdw.run_query(&plan);
    let (_, reference) = execute(&plan, &catalog);
    assert!(elephants::relational::testing::rows_approx_eq(
        &hive_run.rows,
        &reference,
        1e-9
    ));
    assert!(elephants::relational::testing::rows_approx_eq(
        &pdw_run.rows,
        &reference,
        1e-9
    ));
    println!(
        "Q6 @ '250 GB': hive {:.0}s, pdw {:.1}s ({:.1}x) — answers match the reference",
        hive_run.total_secs,
        pdw_run.total_secs,
        hive_run.total_secs / pdw_run.total_secs
    );

    // ---- serving side: one YCSB workload-C point ----------------------
    println!("\n== YCSB workload C, target 10k ops/s ==");
    let cfg = ServingConfig {
        k: 20_000.0,
        warmup_secs: 1.0,
        measure_secs: 3.0,
        threads: 200,
        seed: 1,
    };
    for system in SystemKind::all() {
        let p = run_point(&cfg, system, Workload::C, 10_000.0);
        println!(
            "{:>9}: achieved {:>6.0} ops/s, read latency {:.2} ms",
            system.label(),
            p.achieved_ops,
            p.latency(OpType::Read).unwrap_or(0.0)
        );
    }
    println!("\ndone — see crates/bench/src/bin/ for the full paper reproduction.");
}
