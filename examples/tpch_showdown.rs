//! TPC-H showdown: run chosen queries on Hive and PDW at a chosen emulated
//! scale factor, print the per-query times, speedups, and the PDW plan's
//! data-movement steps (the §3.3.4.1 narrative).
//!
//!     cargo run --release --example tpch_showdown -- [sim_sf] [paper_gb] [queries...]
//!     cargo run --release --example tpch_showdown -- 0.01 16000 5 19

use elephants::cluster::Params;
use elephants::hive::{load_warehouse, HiveEngine};
use elephants::pdw::{load_pdw, PdwEngine};
use elephants::tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sim_sf: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let paper: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000.0);
    let queries: Vec<usize> = if args.len() > 2 {
        args[2..].iter().filter_map(|s| s.parse().ok()).collect()
    } else {
        vec![1, 5, 19]
    };

    println!("generating TPC-H at sim SF {sim_sf} (emulating {paper:.0} GB)...");
    let catalog = generate(&GenConfig::new(sim_sf));
    let params = Params::paper_dss().scaled(paper / sim_sf);
    let (warehouse, _) = load_warehouse(&catalog, &params, None).expect("hive load");
    let hive = HiveEngine::new(warehouse);
    let (pdw_cat, _) = load_pdw(&catalog, &params);
    let pdw = PdwEngine::new(pdw_cat);

    for q in queries {
        let plan = elephants::tpch::query(q);
        let h = hive.run_query(&plan).expect("hive");
        let p = pdw.run_query(&plan);
        assert!(
            elephants::relational::testing::rows_approx_eq(&h.rows, &p.rows, 1e-6),
            "engines disagree on Q{q}"
        );
        println!(
            "\nQ{q}: hive {:.0}s vs pdw {:.0}s  (speedup {:.1}x, {} rows)",
            h.total_secs,
            p.total_secs,
            h.total_secs / p.total_secs,
            p.rows.len()
        );
        println!("  hive jobs:");
        for j in &h.jobs {
            if j.report.total > 1.0 {
                println!(
                    "    {:>7.0}s  {} ({} maps, {} reduces)",
                    j.report.total, j.label, j.report.n_maps, j.report.n_reduces
                );
            }
        }
        println!("  pdw steps:");
        for s in &p.steps {
            if s.secs > 1.0 {
                println!("    {:>7.0}s  {}", s.secs, s.name);
            }
        }
    }
}
