//! Root facade for the Elephants-vs-NoSQL reproduction. Re-exports the
//! workspace crates so `examples/` and `tests/` can use one import root.

#![forbid(unsafe_code)]
pub use cluster;
pub use dfs;
pub use docstore;
pub use elephants_core as core;
pub use hive;
pub use mapreduce;
pub use obs;
pub use pdw;
pub use relational;
pub use simkit;
pub use sqlengine;
pub use storage;
pub use tpch;
pub use ycsb;
